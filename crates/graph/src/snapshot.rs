//! Immutable CSR snapshots and the multi-reader snapshot store.
//!
//! [`crate::DiGraph`] is a single-owner structure: mutation methods
//! take `&mut self`, and its lazy caches (CSR view, cut memo) hang off
//! that ownership. A long-running query service has the opposite
//! shape — many reader threads answering cut queries against a graph
//! that an admin path occasionally replaces — and bolting interior
//! mutability onto `DiGraph` for that case is exactly the wrong fix.
//!
//! Instead, the unit of sharing is a [`CsrSnapshot`]: one immutable
//! capture of a graph at a mutation epoch, holding the edge list, the
//! CSR adjacency view, and its *own* cut-query memo. Because a
//! snapshot never changes, the memo needs no epoch re-keying — entries
//! are valid for the snapshot's whole lifetime, and invalidation is
//! just dropping the `Arc`. `DiGraph` itself now caches an
//! `Arc<CsrSnapshot>` internally, so the single-owner and the
//! multi-reader worlds run the very same kernels on the very same
//! arrays: a cut value served off a snapshot is bit-identical to the
//! one the owning `DiGraph` would return at the same epoch.
//!
//! [`SnapshotStore`] is the publication point between the two worlds.
//! A writer builds the next snapshot *outside* any critical section
//! (`O(n + m)`, no reader waits on it) and [`SnapshotStore::publish`]
//! swaps it in. Readers hold a [`SnapshotReader`]: its
//! [`load`](SnapshotReader::load) is one atomic version check on the
//! steady-state path — no lock, no allocation — and only the *first*
//! load after a publish takes the store's mutex, for the two reference
//! count bumps it takes to re-clone the current `Arc`. Readers
//! therefore never block on snapshot construction, never block each
//! other, and always observe a fully built snapshot or the previous
//! one — never a torn state.

use crate::cache::{CutEntry, CutMemo};
use crate::digraph::{Csr, DiGraph, Edge, UniverseMismatch};
use crate::ids::{NodeId, NodeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// Routes a memo hit to the right observability counter: entries
/// carried across a mutation by delta-epoch retention are counted
/// separately from entries computed on the current snapshot.
fn count_hit(retained: bool) {
    if retained {
        crate::stats::count_cache_hits_retained(1);
    } else {
        crate::stats::count_cache_hits(1);
    }
}

/// Degree-ordered vertex relabeling for the batch kernels, built
/// lazily per snapshot and only consulted when
/// [`crate::cuteval::relabel_enabled`] says so.
///
/// `perm` maps external node ids to internal ranks (total degree
/// descending, id ascending on ties — deterministic for a fixed edge
/// list), and `edges` is the snapshot's edge list with endpoints
/// renamed to internal ids **in the same order** as
/// [`CsrSnapshot::edges`]. The kernels fold edge weights in list
/// order and node names never enter the arithmetic, so scanning the
/// renamed copy against internally-renamed query masks produces
/// bit-identical cut values; the permutation's sole effect is packing
/// the hottest mask words next to each other. Public APIs always
/// speak external ids — the rename is applied when masks are built
/// and never escapes the kernel.
#[derive(Debug)]
pub(crate) struct Relabeling {
    /// External node id → internal (degree-ranked) id.
    pub(crate) perm: Box<[u32]>,
    /// Endpoint-renamed copy of the edge list, insertion order.
    pub(crate) edges: Box<[Edge]>,
}

/// One immutable capture of a [`DiGraph`] at a mutation epoch: the
/// edge list (in insertion order), the CSR adjacency view, and a
/// per-snapshot cut-query memo.
///
/// All query entry points produce **the same f64 bits** as the
/// corresponding `DiGraph` query at the same epoch: the edge scan is
/// the same `+0.0`-seeded fold over the same edge order, and the memo
/// only ever stores values that fold produced.
#[derive(Debug)]
pub struct CsrSnapshot {
    n: usize,
    edges: Box<[Edge]>,
    csr: Csr,
    epoch: u64,
    /// Per-snapshot memo (see [`crate::cache`]). Snapshots are
    /// immutable, so entries never go stale; the lock is held only for
    /// table lookups/stores, never while computing.
    memo: Mutex<CutMemo>,
    /// Lazily built degree-ordered relabeling (see [`Relabeling`]).
    /// Only materialized if a kernel asks for it, so graphs that never
    /// enable `DIRCUT_RELABEL` pay nothing.
    relabel: OnceLock<Relabeling>,
}

impl CsrSnapshot {
    /// Captures `edges` over `n` nodes at `epoch`. `O(n + m)`.
    pub(crate) fn build(n: usize, edges: &[Edge], epoch: u64) -> Self {
        Self {
            n,
            edges: edges.into(),
            csr: Csr::build(n, edges, epoch),
            epoch,
            memo: Mutex::new(CutMemo::default()),
            relabel: OnceLock::new(),
        }
    }

    /// Like [`CsrSnapshot::build`], but seeds the memo with the
    /// previous snapshot's table filtered through
    /// [`CutMemo::retain_disjoint`]: `delta` is one bit per node
    /// ([`NodeSet`] word layout) marking every vertex touched by
    /// mutations since `carried` was recorded. Surviving entries are
    /// marked retained; see `retain_disjoint` for the bit-identity
    /// argument.
    pub(crate) fn build_migrated(
        n: usize,
        edges: &[Edge],
        epoch: u64,
        mut carried: CutMemo,
        delta: &[u64],
    ) -> Self {
        let sparse: Vec<(usize, u64)> = delta
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w != 0)
            .map(|(i, &w)| (i, w))
            .collect();
        carried.retain_disjoint(&sparse);
        Self {
            n,
            edges: edges.into(),
            csr: Csr::build(n, edges, epoch),
            epoch,
            memo: Mutex::new(carried),
            relabel: OnceLock::new(),
        }
    }

    /// Takes the memo out of a snapshot the caller uniquely owns
    /// (delta-epoch migration path).
    pub(crate) fn into_memo(self) -> CutMemo {
        self.memo
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Clones the memo of a still-shared snapshot (delta-epoch
    /// migration when an `Arc` handed out via [`DiGraph::snapshot`] is
    /// alive elsewhere).
    pub(crate) fn clone_memo(&self) -> CutMemo {
        self.memo().clone()
    }

    /// The degree-ordered relabeling, built on first use. See
    /// [`Relabeling`] for the contract.
    pub(crate) fn relabeling(&self) -> &Relabeling {
        self.relabel.get_or_init(|| {
            let degree = |v: u32| {
                let v = NodeId::new(v as usize);
                self.csr.out_edge_ids(v).len() + self.csr.in_edge_ids(v).len()
            };
            let mut order: Vec<u32> = (0..u32::try_from(self.n).expect("n fits u32")).collect();
            order.sort_by_key(|&v| (std::cmp::Reverse(degree(v)), v));
            let mut perm = vec![0u32; self.n];
            for (rank, &v) in order.iter().enumerate() {
                perm[v as usize] = u32::try_from(rank).expect("rank fits u32");
            }
            let edges = self
                .edges
                .iter()
                .map(|e| Edge {
                    from: NodeId::new(perm[e.from.index()] as usize),
                    to: NodeId::new(perm[e.to.index()] as usize),
                    weight: e.weight,
                })
                .collect();
            Relabeling {
                perm: perm.into_boxed_slice(),
                edges,
            }
        })
    }

    /// Number of nodes in the captured graph.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges (counting parallels).
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The captured edge list, in the graph's insertion order.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The CSR adjacency view.
    #[must_use]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// The [`DiGraph::mutation_epoch`] this snapshot was captured at.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    // The three raw cut scans mirror `DiGraph`'s exactly: explicit
    // `+0.0`-seeded folds in edge order, so snapshot-served answers
    // carry the same bits as the owning graph's (including the sign of
    // an exactly-zero cut).
    fn cut_out_raw(&self, s: &NodeSet) -> f64 {
        let mut out = 0.0;
        for e in self.edges.iter() {
            if s.contains(e.from) && !s.contains(e.to) {
                out += e.weight;
            }
        }
        out
    }

    fn cut_in_raw(&self, s: &NodeSet) -> f64 {
        let mut into = 0.0;
        for e in self.edges.iter() {
            if !s.contains(e.from) && s.contains(e.to) {
                into += e.weight;
            }
        }
        into
    }

    fn cut_both_raw(&self, s: &NodeSet) -> (f64, f64) {
        let (mut out, mut into) = (0.0, 0.0);
        for e in self.edges.iter() {
            match (s.contains(e.from), s.contains(e.to)) {
                (true, false) => out += e.weight,
                (false, true) => into += e.weight,
                _ => {}
            }
        }
        (out, into)
    }

    fn memo(&self) -> MutexGuard<'_, CutMemo> {
        // Poison recovery: the memo holds plain data that is never
        // left half-written (entries are inserted whole), so a reader
        // that panicked elsewhere must not wedge every later query.
        self.memo.lock().unwrap_or_else(PoisonError::into_inner)
    }

    // Memo-backed single-query paths. Billing happened at the public
    // entry point; a hit moves only the cache_hits/cache_misses
    // observability counters. Only called with the cache enabled.
    pub(crate) fn cut_out_memo(&self, s: &NodeSet) -> f64 {
        if let Some(e) = self.memo().get(s.words()) {
            if let Some(v) = e.out {
                count_hit(e.retained);
                return v;
            }
        }
        crate::stats::count_cache_misses(1);
        let v = self.cut_out_raw(s);
        self.memo().store(
            s.words(),
            CutEntry {
                out: Some(v),
                into: None,
                retained: false,
            },
        );
        v
    }

    pub(crate) fn cut_in_memo(&self, s: &NodeSet) -> f64 {
        if let Some(e) = self.memo().get(s.words()) {
            if let Some(v) = e.into {
                count_hit(e.retained);
                return v;
            }
        }
        crate::stats::count_cache_misses(1);
        let v = self.cut_in_raw(s);
        self.memo().store(
            s.words(),
            CutEntry {
                out: None,
                into: Some(v),
                retained: false,
            },
        );
        v
    }

    pub(crate) fn cut_both_memo(&self, s: &NodeSet) -> (f64, f64) {
        if let Some(entry) = self.memo().get(s.words()) {
            if let (Some(out), Some(into)) = (entry.out, entry.into) {
                count_hit(entry.retained);
                return (out, into);
            }
        }
        crate::stats::count_cache_misses(1);
        let (out, into) = self.cut_both_raw(s);
        self.memo().store(
            s.words(),
            CutEntry {
                out: Some(out),
                into: Some(into),
                retained: false,
            },
        );
        (out, into)
    }

    /// Batch memo lookup for the [`crate::cuteval`] kernels: fills the
    /// result slots for sets already memoized and returns the indices
    /// that still need computing. One lock acquisition for the whole
    /// batch. When the cache is disabled, every index is returned and
    /// no counters move.
    pub(crate) fn memo_lookup_batch(
        &self,
        sets: &[NodeSet],
        out: Option<&mut [f64]>,
        into: Option<&mut [f64]>,
    ) -> Vec<usize> {
        if !crate::cache::enabled() {
            return (0..sets.len()).collect();
        }
        let mut todo = Vec::new();
        let (mut fresh, mut retained, mut misses) = (0u64, 0u64, 0u64);
        let mut out = out;
        let mut into = into;
        let memo = self.memo();
        for (i, s) in sets.iter().enumerate() {
            let entry = memo.get(s.words()).unwrap_or_default();
            let got_out = entry.out.filter(|_| out.is_some());
            let got_in = entry.into.filter(|_| into.is_some());
            let served =
                (out.is_none() || got_out.is_some()) && (into.is_none() || got_in.is_some());
            if served {
                if let (Some(slots), Some(v)) = (out.as_deref_mut(), got_out) {
                    slots[i] = v;
                }
                if let (Some(slots), Some(v)) = (into.as_deref_mut(), got_in) {
                    slots[i] = v;
                }
                if entry.retained {
                    retained += 1;
                } else {
                    fresh += 1;
                }
            } else {
                todo.push(i);
                misses += 1;
            }
        }
        drop(memo);
        crate::stats::count_cache_hits(fresh);
        crate::stats::count_cache_hits_retained(retained);
        crate::stats::count_cache_misses(misses);
        todo
    }

    /// Batch memo store matching [`CsrSnapshot::memo_lookup_batch`]:
    /// writes the freshly computed values for `indices` back under one
    /// lock.
    pub(crate) fn memo_store_batch(
        &self,
        sets: &[NodeSet],
        indices: &[usize],
        out: Option<&[f64]>,
        into: Option<&[f64]>,
    ) {
        if !crate::cache::enabled() || indices.is_empty() {
            return;
        }
        let mut memo = self.memo();
        for &i in indices {
            memo.store(
                sets[i].words(),
                CutEntry {
                    out: out.map(|v| v[i]),
                    into: into.map(|v| v[i]),
                    retained: false,
                },
            );
        }
    }

    // Unbilled dispatch shared by the public entry points below and
    // `DiGraph`'s delegating query paths (which bill at their own
    // boundary).
    pub(crate) fn cut_out_cached(&self, s: &NodeSet) -> f64 {
        if crate::cache::enabled() {
            self.cut_out_memo(s)
        } else {
            self.cut_out_raw(s)
        }
    }

    pub(crate) fn cut_in_cached(&self, s: &NodeSet) -> f64 {
        if crate::cache::enabled() {
            self.cut_in_memo(s)
        } else {
            self.cut_in_raw(s)
        }
    }

    pub(crate) fn cut_both_cached(&self, s: &NodeSet) -> (f64, f64) {
        if crate::cache::enabled() {
            self.cut_both_memo(s)
        } else {
            self.cut_both_raw(s)
        }
    }

    fn check_universe(&self, s: &NodeSet) -> Result<(), UniverseMismatch> {
        crate::error::check_universe(self.n, s.universe())
    }

    /// The directed cut value `w(S, V∖S)` at this snapshot. Billed and
    /// bit-identical to [`DiGraph::cut_out`] at the same epoch.
    ///
    /// # Errors
    /// [`UniverseMismatch`] if `s.universe() != self.num_nodes()`.
    pub fn try_cut_out(&self, s: &NodeSet) -> Result<f64, UniverseMismatch> {
        self.check_universe(s)?;
        crate::stats::count_cut_queries(1);
        Ok(self.cut_out_cached(s))
    }

    /// The reverse cut value `w(V∖S, S)` at this snapshot.
    ///
    /// # Errors
    /// [`UniverseMismatch`] if `s.universe() != self.num_nodes()`.
    pub fn try_cut_in(&self, s: &NodeSet) -> Result<f64, UniverseMismatch> {
        self.check_universe(s)?;
        crate::stats::count_cut_queries(1);
        Ok(self.cut_in_cached(s))
    }

    /// Both directions of the cut in one scan.
    ///
    /// # Errors
    /// [`UniverseMismatch`] if `s.universe() != self.num_nodes()`.
    pub fn try_cut_both(&self, s: &NodeSet) -> Result<(f64, f64), UniverseMismatch> {
        self.check_universe(s)?;
        crate::stats::count_cut_queries(1);
        Ok(self.cut_both_cached(s))
    }
}

/// A published sequence of [`CsrSnapshot`]s that many threads query
/// while a writer occasionally swaps in a new epoch.
///
/// The store itself holds one `Arc<CsrSnapshot>` behind a mutex plus
/// an atomic version counter. The mutex is held only for `Arc`
/// clone/assign — a handful of instructions — and **never** while a
/// snapshot is being built; writers prepare the next snapshot outside
/// and then [`publish`](SnapshotStore::publish) it. Hot reader loops
/// should mint a [`SnapshotReader`] with
/// [`reader`](SnapshotStore::reader): its steady-state `load` is one
/// atomic compare and no lock at all.
#[derive(Debug)]
pub struct SnapshotStore {
    /// Monotone publication counter, bumped on every publish. Readers
    /// compare against it to detect a new snapshot without locking.
    version: AtomicU64,
    current: Mutex<Arc<CsrSnapshot>>,
}

impl SnapshotStore {
    /// A store serving `snapshot` as its first published state.
    #[must_use]
    pub fn new(snapshot: Arc<CsrSnapshot>) -> Self {
        Self {
            version: AtomicU64::new(0),
            current: Mutex::new(snapshot),
        }
    }

    /// Captures `g` at its current epoch and serves that.
    #[must_use]
    pub fn from_graph(g: &DiGraph) -> Self {
        Self::new(g.snapshot())
    }

    fn slot(&self) -> MutexGuard<'_, Arc<CsrSnapshot>> {
        // A panic between lock and unlock cannot leave a torn Arc, so
        // poison is recovered — one crashed worker must not take the
        // whole serve loop down with it.
        self.current.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The current publication count (0 for a freshly built store,
    /// +1 per [`publish`](SnapshotStore::publish)).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Clones the currently published snapshot. Takes the store mutex
    /// for the duration of one `Arc` clone; hot loops should prefer a
    /// [`SnapshotReader`].
    #[must_use]
    pub fn load(&self) -> Arc<CsrSnapshot> {
        Arc::clone(&self.slot())
    }

    /// Publishes `snapshot` as the new current state and returns the
    /// new publication version. Readers loading afterwards see the new
    /// snapshot; readers mid-query keep the `Arc` they already hold —
    /// a query batch is always answered against one coherent epoch.
    pub fn publish(&self, snapshot: Arc<CsrSnapshot>) -> u64 {
        let mut slot = self.slot();
        *slot = snapshot;
        // Release-publish while still holding the lock so a reader
        // that observes the new version is guaranteed to find the new
        // snapshot in the slot.
        let v = self.version.load(Ordering::Relaxed) + 1;
        self.version.store(v, Ordering::Release);
        v
    }

    /// Captures `g` at its current epoch and publishes the capture.
    /// The `O(n + m)` build happens before the store is touched.
    pub fn publish_graph(&self, g: &DiGraph) -> u64 {
        self.publish(g.snapshot())
    }

    /// Mints a reader handle whose steady-state
    /// [`load`](SnapshotReader::load) never locks.
    #[must_use]
    pub fn reader(self: &Arc<Self>) -> SnapshotReader {
        SnapshotReader {
            cached_version: self.version(),
            cached: self.load(),
            store: Arc::clone(self),
        }
    }
}

/// A per-thread handle onto a [`SnapshotStore`].
///
/// `load` compares the store's atomic version counter against the
/// version this handle last saw: when they match (the steady state —
/// publishes are rare) the cached `Arc` is returned with **no lock and
/// no reference-count traffic**. Only the first load after a publish
/// re-clones the current snapshot under the store's brief mutex.
#[derive(Debug)]
pub struct SnapshotReader {
    store: Arc<SnapshotStore>,
    cached_version: u64,
    cached: Arc<CsrSnapshot>,
}

impl SnapshotReader {
    /// The current snapshot, refreshing the cached handle iff the
    /// store has published a newer one.
    pub fn load(&mut self) -> &Arc<CsrSnapshot> {
        let v = self.store.version();
        if v != self.cached_version {
            self.cached = self.store.load();
            // Re-read: the slot content is at least as new as `v`, so
            // record the version we *observed*, not the one that
            // triggered the refresh.
            self.cached_version = self.store.version();
        }
        &self.cached
    }

    /// The store this reader is attached to.
    #[must_use]
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    fn triangle() -> DiGraph {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), 2.0);
        g.add_edge(NodeId::new(1), NodeId::new(2), 3.0);
        g.add_edge(NodeId::new(2), NodeId::new(0), 5.0);
        g
    }

    #[test]
    fn snapshot_queries_match_graph_queries_bitwise() {
        let g = triangle();
        let snap = g.snapshot();
        assert_eq!(snap.num_nodes(), 3);
        assert_eq!(snap.num_edges(), 3);
        assert_eq!(snap.epoch(), g.mutation_epoch());
        for s in [
            NodeSet::from_indices(3, [0]),
            NodeSet::from_indices(3, [0, 1]),
            NodeSet::empty(3),
            NodeSet::full(3),
        ] {
            let (out, into) = g.cut_both(&s);
            assert_eq!(snap.try_cut_out(&s).unwrap().to_bits(), out.to_bits());
            assert_eq!(snap.try_cut_in(&s).unwrap().to_bits(), into.to_bits());
            let (o2, i2) = snap.try_cut_both(&s).unwrap();
            assert_eq!(
                (o2.to_bits(), i2.to_bits()),
                (out.to_bits(), into.to_bits())
            );
        }
    }

    #[test]
    fn snapshot_rejects_mismatched_universe() {
        let snap = triangle().snapshot();
        let bad = NodeSet::from_indices(4, [0]);
        let err = UniverseMismatch {
            expected: 3,
            got: 4,
        };
        assert_eq!(snap.try_cut_out(&bad), Err(err));
        assert_eq!(snap.try_cut_in(&bad), Err(err));
        assert_eq!(snap.try_cut_both(&bad), Err(err));
    }

    #[test]
    fn snapshot_outlives_graph_mutation() {
        let mut g = triangle();
        let snap = g.snapshot();
        let s = NodeSet::from_indices(3, [0]);
        g.add_edge(NodeId::new(0), NodeId::new(2), 7.0);
        // The old snapshot still answers at the old epoch…
        assert_eq!(snap.try_cut_out(&s).unwrap(), 2.0);
        // …while the graph (and a fresh snapshot) see the new edge.
        assert_eq!(g.cut_out(&s), 9.0);
        assert_eq!(g.snapshot().try_cut_out(&s).unwrap(), 9.0);
        assert!(g.snapshot().epoch() > snap.epoch());
    }

    #[test]
    fn store_publish_bumps_version_and_swaps_snapshot() {
        let mut g = triangle();
        let store = Arc::new(SnapshotStore::from_graph(&g));
        assert_eq!(store.version(), 0);
        let mut reader = store.reader();
        let s = NodeSet::from_indices(3, [0]);
        assert_eq!(reader.load().try_cut_out(&s).unwrap(), 2.0);
        g.add_edge(NodeId::new(0), NodeId::new(2), 7.0);
        let v = store.publish_graph(&g);
        assert_eq!(v, 1);
        assert_eq!(store.version(), 1);
        assert_eq!(reader.load().try_cut_out(&s).unwrap(), 9.0);
        // Steady state: repeated loads return the same Arc.
        let a = Arc::as_ptr(reader.load());
        let b = Arc::as_ptr(reader.load());
        assert_eq!(a, b);
    }

    #[test]
    fn old_readers_keep_their_epoch_until_they_reload() {
        let mut g = triangle();
        let store = Arc::new(SnapshotStore::from_graph(&g));
        let held = store.load();
        g.scale_weights(2.0);
        store.publish_graph(&g);
        let s = NodeSet::from_indices(3, [0]);
        // The held Arc still answers at its own epoch.
        assert_eq!(held.try_cut_out(&s).unwrap(), 2.0);
        assert_eq!(store.load().try_cut_out(&s).unwrap(), 4.0);
    }
}
