//! Maximum flow (Dinic's algorithm), generic over integer and float
//! capacities.
//!
//! Flows are used to *verify* the paper's structural claims: the
//! `2γ`-edge-connectivity of the Section 5.2 graph `G_{x,y}`
//! (Lemma 5.5, Figures 3–6) is checked with exact integer flows, and
//! directed global min-cuts of the weighted gadgets use float flows.
//!
//! Networks support **snapshot/reset reuse**: building the arc arrays
//! is `O(m)` allocations, so batch solvers (edge connectivity,
//! Gomory–Hu, the directed global min-cut) build one network and call
//! [`FlowNetwork::reset`] between sinks instead of reallocating. The
//! augmenting-path search is iterative, so path graphs of any depth
//! cannot overflow the stack.

use crate::digraph::DiGraph;
use crate::ids::{NodeId, NodeSet};
use std::sync::OnceLock;

/// Capacity types usable in the flow network.
pub trait Capacity:
    Copy + PartialOrd + std::ops::Add<Output = Self> + std::ops::Sub<Output = Self> + std::fmt::Debug
{
    /// The zero capacity.
    const ZERO: Self;
    /// Whether the capacity is meaningfully positive (above numeric
    /// noise for floats) relative to a default-scale network.
    fn is_positive(self) -> bool {
        self.exceeds(Self::default_eps())
    }
    /// Whether the capacity exceeds the given noise threshold.
    fn exceeds(self, eps: Self) -> bool;
    /// The residual-noise threshold for networks whose largest single
    /// arc capacity is `max_cap`. For exact (integer) capacities this
    /// is zero; for floats it scales with `max_cap` so that residual
    /// classification is invariant under uniform weight scaling.
    fn scaled_eps(max_cap: Self) -> Self;
    /// The threshold assumed by [`Capacity::is_positive`] (a network
    /// with unit-scale capacities).
    fn default_eps() -> Self;
    /// The larger of two capacities.
    fn max2(self, other: Self) -> Self;
    /// The smaller of two capacities.
    fn min2(self, other: Self) -> Self;
}

impl Capacity for u64 {
    const ZERO: Self = 0;
    fn exceeds(self, eps: Self) -> bool {
        self > eps
    }
    fn scaled_eps(_max_cap: Self) -> Self {
        0
    }
    fn default_eps() -> Self {
        0
    }
    fn max2(self, other: Self) -> Self {
        self.max(other)
    }
    fn min2(self, other: Self) -> Self {
        self.min(other)
    }
}

impl Capacity for f64 {
    const ZERO: Self = 0.0;
    fn exceeds(self, eps: Self) -> bool {
        self > eps
    }
    /// Relative tolerance: `1e-11 × max(1, max_cap)`. The old absolute
    /// `1e-11` threshold misclassified residuals once edge weights were
    /// scaled up by `~1e12` (cancellation noise grows with the weights
    /// while the threshold did not).
    fn scaled_eps(max_cap: Self) -> Self {
        1e-11 * max_cap.max(1.0)
    }
    fn default_eps() -> Self {
        1e-11
    }
    fn max2(self, other: Self) -> Self {
        self.max(other)
    }
    fn min2(self, other: Self) -> Self {
        self.min(other)
    }
}

#[derive(Debug, Clone, Copy)]
struct Arc<C> {
    to: u32,
    cap: C,
}

/// Flat (compressed-sparse-row) arc adjacency shared by the flow
/// backends: one offsets table plus one arc-id array, built lazily
/// from the arc list (arc `i`'s owner is `arcs[i ^ 1].to`, the tail of
/// the paired residual arc). Per-node slices keep ascending arc-id
/// order, which is exactly the historical per-node `Vec` push order —
/// so traversal order, and therefore every flow value, is unchanged.
#[derive(Debug, Clone, Default)]
pub(crate) struct FlatAdj {
    offsets: Vec<u32>,
    arcs: Vec<u32>,
}

impl FlatAdj {
    pub(crate) fn build(n: usize, m: usize, owner: impl Fn(usize) -> u32) -> Self {
        let mut offsets = vec![0u32; n + 1];
        for i in 0..m {
            offsets[owner(i) as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let mut cursor = offsets[..n].to_vec();
        let mut arcs = vec![0u32; m];
        for i in 0..m {
            let c = &mut cursor[owner(i) as usize];
            arcs[*c as usize] = i as u32;
            *c += 1;
        }
        Self { offsets, arcs }
    }

    #[inline]
    pub(crate) fn of(&self, u: usize) -> &[u32] {
        &self.arcs[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }
}

/// Common interface over the workspace's max-flow backends (Dinic's
/// [`FlowNetwork`] and [`crate::push_relabel::PushRelabel`]): both are
/// `Capacity`-generic, keep an as-built capacity snapshot, and restore
/// it with `reset` so batch solvers can swap backends without
/// rebuilding arcs.
pub trait MaxFlow<C: Capacity> {
    /// Number of nodes.
    fn num_nodes(&self) -> usize;
    /// Adds a directed arc `u → v` with the given capacity.
    fn add_arc(&mut self, u: NodeId, v: NodeId, cap: C);
    /// Maximum `s → t` flow, consuming residual capacity.
    fn max_flow(&mut self, s: NodeId, t: NodeId) -> C;
    /// Restores every residual capacity to its as-built value.
    fn reset(&mut self);
    /// After `max_flow`, the source side of a minimum cut.
    fn min_cut_side(&self, s: NodeId) -> NodeSet;
}

/// A Dinic max-flow network with residual arcs stored in xor-paired
/// positions (`arc i` ↔ `arc i^1`).
///
/// The capacities passed to [`FlowNetwork::add_arc`] /
/// [`FlowNetwork::add_undirected`] are retained as an immutable
/// snapshot, so after any number of [`FlowNetwork::max_flow`] calls the
/// network can be restored with [`FlowNetwork::reset`] in one `O(m)`
/// pass — no reallocation, no adjacency rebuild.
#[derive(Debug, Clone)]
pub struct FlowNetwork<C> {
    n: usize,
    arcs: Vec<Arc<C>>,
    /// Pristine capacities of every arc slot, in arc order.
    base: Vec<C>,
    /// Flat adjacency view, built lazily from the arc list and dropped
    /// whenever an arc is added (same invalidation rule as the
    /// [`crate::digraph::DiGraph`] CSR cache).
    adj: OnceLock<FlatAdj>,
    /// Residual-noise threshold, tracking the largest arc capacity.
    eps: C,
    /// Whether the residual capacities equal the as-built snapshot
    /// (true after construction and [`FlowNetwork::reset`], false after
    /// a solve). Warm replays only trigger from a pristine state, so a
    /// replayed solve answers exactly what the cold solve would have.
    pristine: bool,
    /// Solve-replay memo (see [`crate::cache`]): `(s, t)` → flow value
    /// plus post-solve residual capacities. Cleared whenever an arc is
    /// added, because the memo is only valid for this exact snapshot.
    warm: crate::cache::FlowMemo<C>,
}

impl<C: Capacity> FlowNetwork<C> {
    /// An empty network on `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            arcs: Vec::new(),
            base: Vec::new(),
            adj: OnceLock::new(),
            eps: C::ZERO,
            pristine: true,
            warm: crate::cache::FlowMemo::default(),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of arc slots: every [`FlowNetwork::add_arc`] or
    /// [`FlowNetwork::add_undirected`] call contributes an xor-paired
    /// slot pair, so a network built one edge at a time holds exactly
    /// `2 · m` slots. Entry points that accept a caller-supplied
    /// network assert on this to reject networks that went stale
    /// against a mutated graph.
    #[must_use]
    pub fn num_arc_slots(&self) -> usize {
        self.arcs.len()
    }

    /// Live entries in the solve-replay memo. The memo is dropped —
    /// never migrated — on any mutation (`add_arc`/`add_undirected`
    /// clear it, and a network rebuilt for a mutated graph starts
    /// cold), so after any migration this is observably `0`.
    #[must_use]
    pub fn warm_len(&self) -> usize {
        self.warm.len()
    }

    fn adj(&self) -> &FlatAdj {
        self.adj
            .get_or_init(|| FlatAdj::build(self.n, self.arcs.len(), |i| self.arcs[i ^ 1].to))
    }

    #[inline]
    fn adj_len(&self, u: usize) -> usize {
        self.adj().of(u).len()
    }

    #[inline]
    fn adj_at(&self, u: usize, k: usize) -> u32 {
        self.adj().of(u)[k]
    }

    /// Adds a directed arc `u → v` with the given capacity (reverse
    /// residual capacity zero).
    pub fn add_arc(&mut self, u: NodeId, v: NodeId, cap: C) {
        assert!(
            u.index() < self.n && v.index() < self.n,
            "arc endpoint out of range"
        );
        self.adj.take();
        self.warm.clear();
        self.arcs.push(Arc { to: v.0, cap });
        self.arcs.push(Arc {
            to: u.0,
            cap: C::ZERO,
        });
        self.base.push(cap);
        self.base.push(C::ZERO);
        self.eps = self.eps.max2(C::scaled_eps(cap));
    }

    /// Adds an undirected edge: capacity `cap` in both directions.
    pub fn add_undirected(&mut self, u: NodeId, v: NodeId, cap: C) {
        assert!(
            u.index() < self.n && v.index() < self.n,
            "arc endpoint out of range"
        );
        self.adj.take();
        self.warm.clear();
        self.arcs.push(Arc { to: v.0, cap });
        self.arcs.push(Arc { to: u.0, cap });
        self.base.push(cap);
        self.base.push(cap);
        self.eps = self.eps.max2(C::scaled_eps(cap));
    }

    /// Restores every residual capacity to its as-built value, so the
    /// network can be solved again for a different terminal pair. `O(m)`
    /// with no allocation.
    pub fn reset(&mut self) {
        for (arc, &cap) in self.arcs.iter_mut().zip(self.base.iter()) {
            arc.cap = cap;
        }
        self.pristine = true;
    }

    /// The residual-noise threshold this network classifies
    /// positive capacities with (relative to its largest arc).
    #[must_use]
    pub fn residual_eps(&self) -> C {
        self.eps
    }

    fn bfs_levels(&self, s: usize, t: usize, levels: &mut [u32]) -> bool {
        let adj = self.adj();
        levels.fill(u32::MAX);
        levels[s] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &ai in adj.of(u) {
                let arc = &self.arcs[ai as usize];
                let v = arc.to as usize;
                if arc.cap.exceeds(self.eps) && levels[v] == u32::MAX {
                    levels[v] = levels[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        levels[t] != u32::MAX
    }

    /// Finds one augmenting `s → t` path in the level graph and pushes
    /// its bottleneck, walking an explicit arc stack — deep path graphs
    /// cannot overflow the call stack. Mirrors the classic recursive
    /// `dfs_push` exactly: same arc visit order (via `iters`), same
    /// bottleneck arithmetic, same residual updates.
    fn augment_once(
        &mut self,
        s: usize,
        t: usize,
        levels: &[u32],
        iters: &mut [usize],
        path: &mut Vec<u32>,
    ) -> Option<C> {
        path.clear();
        let mut u = s;
        loop {
            if u == t {
                // Bottleneck over the path, in path order (identical
                // f64 arithmetic to the recursive descent).
                let mut bottleneck = self.arcs[path[0] as usize].cap;
                for &ai in &path[1..] {
                    bottleneck = bottleneck.min2(self.arcs[ai as usize].cap);
                }
                for &ai in path.iter() {
                    let ai = ai as usize;
                    self.arcs[ai].cap = self.arcs[ai].cap - bottleneck;
                    self.arcs[ai ^ 1].cap = self.arcs[ai ^ 1].cap + bottleneck;
                }
                return Some(bottleneck);
            }
            // Advance along the first admissible arc out of `u`. The
            // adjacency reads are short-lived accessor calls so the
            // residual updates above can take `&mut self.arcs`.
            let mut advanced = false;
            while iters[u] < self.adj_len(u) {
                let ai = self.adj_at(u, iters[u]);
                let arc = self.arcs[ai as usize];
                if arc.cap.exceeds(self.eps) && levels[arc.to as usize] == levels[u] + 1 {
                    path.push(ai);
                    u = arc.to as usize;
                    advanced = true;
                    break;
                }
                iters[u] += 1;
            }
            if !advanced {
                // Dead end: retreat one arc and skip it at the parent,
                // exactly as the recursive version does when a child
                // returns `None`.
                match path.pop() {
                    Some(ai) => {
                        u = self.arcs[(ai ^ 1) as usize].to as usize;
                        iters[u] += 1;
                    }
                    None => return None,
                }
            }
        }
    }

    /// Computes the maximum `s → t` flow, mutating residual capacities.
    /// Call [`FlowNetwork::reset`] to solve again for another pair.
    ///
    /// # Panics
    /// Panics if `s == t`.
    pub fn max_flow(&mut self, s: NodeId, t: NodeId) -> C {
        assert!(s != t, "max_flow requires s ≠ t");
        // Warm replay is only sound from the pristine snapshot: the
        // memo records the residual state a cold solve leaves behind,
        // so restoring it reproduces the solve bit-for-bit (including
        // the subsequent `min_cut_side`). The solve is billed either
        // way — the cache never changes resource accounting.
        let warm_ok = self.pristine && crate::cache::enabled();
        if warm_ok {
            if let Some(entry) = self.warm.get(s.0, t.0) {
                let value = entry.value;
                debug_assert_eq!(entry.caps.len(), self.arcs.len());
                for (arc, &cap) in self.arcs.iter_mut().zip(&entry.caps) {
                    arc.cap = cap;
                }
                self.pristine = false;
                crate::stats::count_solve();
                crate::stats::count_cache_hits(1);
                return value;
            }
        }
        let (si, ti) = (s.index(), t.index());
        let _ = self.adj(); // build once, outside the solve loops
        let mut total = C::ZERO;
        let mut levels = vec![u32::MAX; self.n];
        let mut path: Vec<u32> = Vec::new();
        while self.bfs_levels(si, ti, &mut levels) {
            let mut iters = vec![0usize; self.n];
            while let Some(got) = self.augment_once(si, ti, &levels, &mut iters, &mut path) {
                total = total + got;
            }
        }
        crate::stats::count_solve();
        if warm_ok {
            crate::stats::count_cache_misses(1);
            self.warm
                .store(s.0, t.0, total, self.arcs.iter().map(|a| a.cap).collect());
        }
        self.pristine = false;
        total
    }

    /// After a `max_flow` call, returns the source side of a minimum
    /// cut: all nodes reachable from `s` in the residual network.
    #[must_use]
    pub fn min_cut_side(&self, s: NodeId) -> NodeSet {
        let adj = self.adj();
        let mut side = NodeSet::empty(self.n);
        let mut stack = vec![s.index()];
        side.insert(s);
        while let Some(u) = stack.pop() {
            for &ai in adj.of(u) {
                let arc = &self.arcs[ai as usize];
                let v = arc.to as usize;
                if arc.cap.exceeds(self.eps) && !side.contains(NodeId::new(v)) {
                    side.insert(NodeId::new(v));
                    stack.push(v);
                }
            }
        }
        side
    }
}

impl<C: Capacity> MaxFlow<C> for FlowNetwork<C> {
    fn num_nodes(&self) -> usize {
        self.n
    }
    fn add_arc(&mut self, u: NodeId, v: NodeId, cap: C) {
        FlowNetwork::add_arc(self, u, v, cap);
    }
    fn max_flow(&mut self, s: NodeId, t: NodeId) -> C {
        FlowNetwork::max_flow(self, s, t)
    }
    fn reset(&mut self) {
        FlowNetwork::reset(self);
    }
    fn min_cut_side(&self, s: NodeId) -> NodeSet {
        FlowNetwork::min_cut_side(self, s)
    }
}

/// Builds a float-capacity network from a weighted digraph (one arc per
/// edge).
#[must_use]
pub fn network_from_digraph(g: &DiGraph) -> FlowNetwork<f64> {
    let mut net = FlowNetwork::new(g.num_nodes());
    for e in g.edges() {
        net.add_arc(e.from, e.to, e.weight);
    }
    net
}

/// Builds an integer unit-capacity network from an undirected graph
/// (each edge has capacity 1 in both directions).
#[must_use]
pub fn unit_network_from_ungraph(g: &crate::ungraph::UnGraph) -> FlowNetwork<u64> {
    let mut net: FlowNetwork<u64> = FlowNetwork::new(g.num_nodes());
    for (u, v) in g.edges() {
        net.add_undirected(u, v, 1);
    }
    net
}

/// Builds a float-capacity network with each digraph edge contributing
/// its weight in *both* directions (the undirected symmetrization used
/// by Gomory–Hu and pairwise min-cut checks).
#[must_use]
pub fn symmetric_network_from_digraph(g: &DiGraph) -> FlowNetwork<f64> {
    let mut net = FlowNetwork::new(g.num_nodes());
    for e in g.edges() {
        net.add_undirected(e.from, e.to, e.weight);
    }
    net
}

/// Maximum `s → t` flow value in a weighted digraph.
#[must_use]
pub fn max_flow_digraph(g: &DiGraph, s: NodeId, t: NodeId) -> f64 {
    network_from_digraph(g).max_flow(s, t)
}

/// Number of edge-disjoint `s → t` paths in an *undirected* unweighted
/// graph, computed with exact integer flows.
#[must_use]
pub fn edge_disjoint_paths(g: &crate::ungraph::UnGraph, s: NodeId, t: NodeId) -> u64 {
    unit_network_from_ungraph(g).max_flow(s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ungraph::UnGraph;

    #[test]
    fn unit_path_has_flow_one() {
        let mut net: FlowNetwork<u64> = FlowNetwork::new(3);
        net.add_arc(NodeId::new(0), NodeId::new(1), 1);
        net.add_arc(NodeId::new(1), NodeId::new(2), 1);
        assert_eq!(net.max_flow(NodeId::new(0), NodeId::new(2)), 1);
    }

    #[test]
    fn parallel_paths_add_up() {
        let mut net: FlowNetwork<u64> = FlowNetwork::new(4);
        // two disjoint paths 0→1→3 and 0→2→3 plus a direct arc 0→3
        net.add_arc(NodeId::new(0), NodeId::new(1), 2);
        net.add_arc(NodeId::new(1), NodeId::new(3), 2);
        net.add_arc(NodeId::new(0), NodeId::new(2), 3);
        net.add_arc(NodeId::new(2), NodeId::new(3), 1);
        net.add_arc(NodeId::new(0), NodeId::new(3), 5);
        assert_eq!(net.max_flow(NodeId::new(0), NodeId::new(3)), 8);
    }

    #[test]
    fn classic_textbook_instance() {
        // CLRS figure: max flow 23.
        let mut net: FlowNetwork<u64> = FlowNetwork::new(6);
        let a = |i: usize| NodeId::new(i);
        net.add_arc(a(0), a(1), 16);
        net.add_arc(a(0), a(2), 13);
        net.add_arc(a(1), a(2), 10);
        net.add_arc(a(2), a(1), 4);
        net.add_arc(a(1), a(3), 12);
        net.add_arc(a(3), a(2), 9);
        net.add_arc(a(2), a(4), 14);
        net.add_arc(a(4), a(3), 7);
        net.add_arc(a(3), a(5), 20);
        net.add_arc(a(4), a(5), 4);
        assert_eq!(net.max_flow(a(0), a(5)), 23);
    }

    #[test]
    fn float_flow_matches_integer_flow() {
        let mut gi: FlowNetwork<u64> = FlowNetwork::new(4);
        let mut gf: FlowNetwork<f64> = FlowNetwork::new(4);
        let edges = [
            (0usize, 1usize, 3u64),
            (0, 2, 2),
            (1, 3, 2),
            (2, 3, 3),
            (1, 2, 1),
        ];
        for &(u, v, c) in &edges {
            gi.add_arc(NodeId::new(u), NodeId::new(v), c);
            gf.add_arc(NodeId::new(u), NodeId::new(v), c as f64);
        }
        let fi = gi.max_flow(NodeId::new(0), NodeId::new(3));
        let ff = gf.max_flow(NodeId::new(0), NodeId::new(3));
        assert!((fi as f64 - ff).abs() < 1e-9);
    }

    #[test]
    fn min_cut_side_certifies_flow_value() {
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId::new(0), NodeId::new(1), 5.0);
        g.add_edge(NodeId::new(0), NodeId::new(2), 3.0);
        g.add_edge(NodeId::new(1), NodeId::new(3), 2.0);
        g.add_edge(NodeId::new(2), NodeId::new(3), 4.0);
        let mut net = network_from_digraph(&g);
        let flow = net.max_flow(NodeId::new(0), NodeId::new(3));
        let side = net.min_cut_side(NodeId::new(0));
        assert!(side.contains(NodeId::new(0)));
        assert!(!side.contains(NodeId::new(3)));
        // Cut value in the ORIGINAL graph equals the flow (max-flow/min-cut).
        assert!((g.cut_out(&side) - flow).abs() < 1e-9);
        assert!((flow - 5.0).abs() < 1e-9);
    }

    #[test]
    fn edge_disjoint_paths_on_cycle() {
        let mut g = UnGraph::new(5);
        for i in 0..5 {
            g.add_edge(NodeId::new(i), NodeId::new((i + 1) % 5));
        }
        // A cycle is 2-edge-connected: exactly 2 disjoint paths.
        assert_eq!(edge_disjoint_paths(&g, NodeId::new(0), NodeId::new(2)), 2);
    }

    #[test]
    fn edge_disjoint_paths_on_complete_graph() {
        let n = 6;
        let mut g = UnGraph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(NodeId::new(i), NodeId::new(j));
            }
        }
        // K6 is 5-edge-connected.
        assert_eq!(edge_disjoint_paths(&g, NodeId::new(0), NodeId::new(5)), 5);
    }

    #[test]
    fn disconnected_pair_has_zero_flow() {
        let mut net: FlowNetwork<u64> = FlowNetwork::new(3);
        net.add_arc(NodeId::new(0), NodeId::new(1), 7);
        assert_eq!(net.max_flow(NodeId::new(0), NodeId::new(2)), 0);
    }

    #[test]
    fn reverse_direction_respects_arc_orientation() {
        let mut net: FlowNetwork<u64> = FlowNetwork::new(2);
        net.add_arc(NodeId::new(0), NodeId::new(1), 9);
        assert_eq!(net.max_flow(NodeId::new(1), NodeId::new(0)), 0);
    }

    #[test]
    fn reset_restores_the_network_for_reuse() {
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId::new(0), NodeId::new(1), 5.0);
        g.add_edge(NodeId::new(0), NodeId::new(2), 3.0);
        g.add_edge(NodeId::new(1), NodeId::new(3), 2.0);
        g.add_edge(NodeId::new(2), NodeId::new(3), 4.0);
        let mut net = network_from_digraph(&g);
        let first = net.max_flow(NodeId::new(0), NodeId::new(3));
        net.reset();
        let second = net.max_flow(NodeId::new(0), NodeId::new(3));
        assert_eq!(
            first.to_bits(),
            second.to_bits(),
            "reset must fully restore residuals"
        );
        // And solving a different pair after reset matches a fresh build.
        net.reset();
        let reused = net.max_flow(NodeId::new(0), NodeId::new(2));
        let fresh = network_from_digraph(&g).max_flow(NodeId::new(0), NodeId::new(2));
        assert_eq!(reused.to_bits(), fresh.to_bits());
    }

    #[test]
    fn warm_replay_matches_cold_solve_and_is_billed() {
        let _guard = crate::cache::test_lock();
        crate::cache::set_enabled(true);
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId::new(0), NodeId::new(1), 5.5);
        g.add_edge(NodeId::new(0), NodeId::new(2), 3.25);
        g.add_edge(NodeId::new(1), NodeId::new(3), 2.125);
        g.add_edge(NodeId::new(2), NodeId::new(3), 4.75);
        g.add_edge(NodeId::new(1), NodeId::new(2), 1.0625);
        let mut net = network_from_digraph(&g);
        let solves_before = crate::stats::total_solves();
        let hits_before = crate::stats::total_cache_hits();
        let cold = net.max_flow(NodeId::new(0), NodeId::new(3));
        let cold_side = net.min_cut_side(NodeId::new(0));
        net.reset();
        let warm = net.max_flow(NodeId::new(0), NodeId::new(3));
        let warm_side = net.min_cut_side(NodeId::new(0));
        assert_eq!(cold.to_bits(), warm.to_bits());
        assert_eq!(cold_side, warm_side);
        // The replay was billed as a solve and observed as a hit.
        assert_eq!(crate::stats::total_solves(), solves_before + 2);
        assert_eq!(crate::stats::total_cache_hits(), hits_before + 1);
        // With the cache off, the same reset/solve cycle recomputes the
        // identical bits.
        crate::cache::set_enabled(false);
        net.reset();
        let off = net.max_flow(NodeId::new(0), NodeId::new(3));
        assert_eq!(off.to_bits(), cold.to_bits());
        assert_eq!(net.min_cut_side(NodeId::new(0)), cold_side);
        crate::cache::set_enabled(true);
    }

    #[test]
    fn adding_an_arc_drops_the_warm_memo() {
        let _guard = crate::cache::test_lock();
        crate::cache::set_enabled(true);
        let mut net: FlowNetwork<u64> = FlowNetwork::new(3);
        net.add_arc(NodeId::new(0), NodeId::new(1), 2);
        net.add_arc(NodeId::new(1), NodeId::new(2), 2);
        assert_eq!(net.max_flow(NodeId::new(0), NodeId::new(2)), 2);
        net.reset();
        // New capacity must be visible: a stale replay would answer 2.
        net.add_arc(NodeId::new(0), NodeId::new(2), 5);
        assert_eq!(net.max_flow(NodeId::new(0), NodeId::new(2)), 7);
    }

    #[test]
    fn deep_path_graph_does_not_overflow_the_stack() {
        // A 10_000-node unit path exercises an augmenting path of
        // maximal depth; the iterative walk must handle it.
        let n = 10_000;
        let mut net: FlowNetwork<u64> = FlowNetwork::new(n);
        for i in 0..n - 1 {
            net.add_arc(NodeId::new(i), NodeId::new(i + 1), 1 + (i as u64 % 3));
        }
        assert_eq!(net.max_flow(NodeId::new(0), NodeId::new(n - 1)), 1);
    }

    #[test]
    fn relative_tolerance_survives_extreme_weight_scaling() {
        // The same instance at unit scale and scaled by 1e12 must
        // produce proportional flows; with the old absolute 1e-11
        // threshold the scaled instance misclassified residual noise.
        let edges = [
            (0usize, 1usize, 3.7),
            (0, 2, 2.2),
            (1, 3, 2.9),
            (2, 3, 3.1),
            (1, 2, 1.3),
        ];
        let scale = 1e12;
        let mut small: FlowNetwork<f64> = FlowNetwork::new(4);
        let mut big: FlowNetwork<f64> = FlowNetwork::new(4);
        for &(u, v, c) in &edges {
            small.add_arc(NodeId::new(u), NodeId::new(v), c);
            big.add_arc(NodeId::new(u), NodeId::new(v), c * scale);
        }
        assert!(big.residual_eps() > f64::default_eps());
        let fs = small.max_flow(NodeId::new(0), NodeId::new(3));
        let fb = big.max_flow(NodeId::new(0), NodeId::new(3));
        assert!(
            (fb / scale - fs).abs() < 1e-6 * fs,
            "scaled {fb} vs unit {fs}"
        );
    }
}
