//! Randomized contraction min-cut (Karger, Karger–Stein) and
//! near-minimum-cut enumeration.
//!
//! The distributed min-cut application (Section 1 of the paper) relies
//! on the classic fact that at most `n^{O(C)}` cuts are within a factor
//! `C` of the minimum; Karger–Stein finds each with inverse-polynomial
//! probability, so repeating it enumerates all of them with high
//! probability. [`enumerate_near_min_cuts`] is exactly that loop.
//!
//! The contracted graph is kept as a dense symmetric weight matrix:
//! one contraction is `O(n)` (merge a row/column), so a full
//! Karger–Stein run is `O(n² log n)` — fast enough to repeat hundreds
//! of times inside the distributed coordinator.

use crate::digraph::DiGraph;
use crate::ids::NodeSet;
use rand::Rng;

/// A weighted undirected multigraph under contraction: flat dense
/// symmetric weight matrix over super-nodes plus the membership of
/// each. Kept in one allocation so recursive clones are cheap, and
/// compacted at each Karger–Stein recursion level so clone cost tracks
/// the *contracted* size, not the original.
#[derive(Debug, Clone)]
struct Contracted {
    /// Row-major symmetric pairwise weights (diagonal 0), stride `dim`.
    w: Vec<f64>,
    dim: usize,
    /// Weighted degree of each super-node.
    deg: Vec<f64>,
    /// Remaining super-node ids (indices into the current matrix).
    alive: Vec<usize>,
    /// Original nodes inside each super-node.
    groups: Vec<Vec<u32>>,
}

impl Contracted {
    fn from_digraph(g: &DiGraph) -> Self {
        let n = g.num_nodes();
        let mut w = vec![0.0f64; n * n];
        for e in g.edges() {
            let (u, v) = (e.from.index(), e.to.index());
            w[u * n + v] += e.weight;
            w[v * n + u] += e.weight;
        }
        let deg = (0..n).map(|u| w[u * n..(u + 1) * n].iter().sum()).collect();
        Self {
            w,
            dim: n,
            deg,
            alive: (0..n).collect(),
            groups: (0..n).map(|i| vec![i as u32]).collect(),
        }
    }

    fn num_alive(&self) -> usize {
        self.alive.len()
    }

    #[inline]
    fn weight(&self, u: usize, v: usize) -> f64 {
        self.w[u * self.dim + v]
    }

    fn total_weight(&self) -> f64 {
        self.alive.iter().map(|&u| self.deg[u]).sum::<f64>() / 2.0
    }

    /// Rebuilds the matrix over only the alive super-nodes, so clones
    /// deeper in the recursion copy `O(alive²)` instead of `O(n²)`.
    fn compacted(&self) -> Self {
        let k = self.alive.len();
        let mut w = vec![0.0f64; k * k];
        for (i, &a) in self.alive.iter().enumerate() {
            for (j, &b) in self.alive.iter().enumerate() {
                w[i * k + j] = self.weight(a, b);
            }
        }
        let deg = self.alive.iter().map(|&a| self.deg[a]).collect();
        let groups = self.alive.iter().map(|&a| self.groups[a].clone()).collect();
        Self { w, dim: k, deg, alive: (0..k).collect(), groups }
    }

    /// Contracts a weight-proportional random edge. Returns `false` if
    /// no edge remains (disconnected remainder).
    fn contract_random_edge<R: Rng>(&mut self, rng: &mut R) -> bool {
        let total = self.total_weight();
        if total <= 0.0 {
            return false;
        }
        // Pick endpoint u ∝ weighted degree, then v ∝ w[u][v].
        let mut pick = rng.gen_range(0.0..2.0 * total);
        let mut u = *self.alive.last().expect("no alive nodes");
        for &cand in &self.alive {
            if pick < self.deg[cand] {
                u = cand;
                break;
            }
            pick -= self.deg[cand];
        }
        let mut pick = rng.gen_range(0.0..self.deg[u].max(f64::MIN_POSITIVE));
        let mut v = usize::MAX;
        for &cand in &self.alive {
            if cand == u {
                continue;
            }
            if pick < self.weight(u, cand) {
                v = cand;
                break;
            }
            pick -= self.weight(u, cand);
        }
        if v == usize::MAX {
            // Degenerate rounding: take the heaviest partner.
            v = *self
                .alive
                .iter()
                .filter(|&&c| c != u)
                .max_by(|&&a, &&b| {
                    self.weight(u, a).partial_cmp(&self.weight(u, b)).expect("NaN")
                })
                .expect("at least 2 alive nodes");
            if self.weight(u, v) <= 0.0 {
                return false;
            }
        }
        self.merge(u, v);
        true
    }

    /// Merges super-node `v` into `u` in `O(alive)`.
    fn merge(&mut self, u: usize, v: usize) {
        let moved = std::mem::take(&mut self.groups[v]);
        self.groups[u].extend(moved);
        self.alive.retain(|&x| x != v);
        // u absorbs v's edges; drop the (u, v) weight from both degrees.
        let d = self.dim;
        self.deg[u] += self.deg[v] - 2.0 * self.w[u * d + v];
        self.w[u * d + v] = 0.0;
        self.w[v * d + u] = 0.0;
        self.deg[v] = 0.0;
        for &x in &self.alive {
            if x == u {
                continue;
            }
            let add = self.w[v * d + x];
            if add > 0.0 {
                self.w[u * d + x] += add;
                self.w[x * d + u] = self.w[u * d + x];
                self.w[v * d + x] = 0.0;
                self.w[x * d + v] = 0.0;
            }
        }
    }

    /// When exactly 2 super-nodes remain, the cut between them.
    fn final_cut(&self, n: usize) -> (f64, NodeSet) {
        debug_assert_eq!(self.num_alive(), 2);
        let (a, b) = (self.alive[0], self.alive[1]);
        let value = self.weight(a, b);
        let side = NodeSet::from_indices(n, self.groups[a].iter().map(|&x| x as usize));
        (value, side)
    }
}

/// One run of Karger's contraction algorithm. Returns `(cut value,
/// side)`; the value is the *undirected* (symmetrized) cut weight.
///
/// # Panics
/// Panics if the graph has < 2 nodes or is disconnected after
/// symmetrization (no contractible edges while > 2 super-nodes remain).
#[must_use]
pub fn karger_once<R: Rng>(g: &DiGraph, rng: &mut R) -> (f64, NodeSet) {
    let n = g.num_nodes();
    assert!(n >= 2, "min-cut needs ≥ 2 nodes");
    let mut c = Contracted::from_digraph(g);
    while c.num_alive() > 2 {
        assert!(c.contract_random_edge(rng), "graph is disconnected");
    }
    c.final_cut(n)
}

fn karger_stein_rec<R: Rng>(c: &Contracted, n: usize, rng: &mut R) -> Option<(f64, NodeSet)> {
    let k = c.num_alive();
    if k <= 6 {
        let mut best: Option<(f64, NodeSet)> = None;
        let compact = c.compacted();
        for _ in 0..16 {
            let mut cc = compact.clone();
            while cc.num_alive() > 2 {
                if !cc.contract_random_edge(rng) {
                    break;
                }
            }
            if cc.num_alive() == 2 {
                let cut = cc.final_cut(n);
                if best.as_ref().is_none_or(|(b, _)| cut.0 < *b) {
                    best = Some(cut);
                }
            }
        }
        return best;
    }
    let target = ((k as f64) / std::f64::consts::SQRT_2).ceil() as usize + 1;
    let mut best: Option<(f64, NodeSet)> = None;
    for _ in 0..2 {
        let mut cc = c.compacted();
        while cc.num_alive() > target {
            if !cc.contract_random_edge(rng) {
                break;
            }
        }
        if let Some(cut) = karger_stein_rec(&cc, n, rng) {
            if best.as_ref().is_none_or(|(b, _)| cut.0 < *b) {
                best = Some(cut);
            }
        }
    }
    best
}

/// One run of the Karger–Stein recursive contraction algorithm.
///
/// # Panics
/// Panics if the graph has < 2 nodes or no cut was found (the
/// symmetrization is disconnected).
#[must_use]
pub fn karger_stein_once<R: Rng>(g: &DiGraph, rng: &mut R) -> (f64, NodeSet) {
    let n = g.num_nodes();
    assert!(n >= 2, "min-cut needs ≥ 2 nodes");
    let c = Contracted::from_digraph(g);
    karger_stein_rec(&c, n, rng).expect("graph is disconnected")
}

/// Repeats Karger–Stein `trials` times and returns every *distinct* cut
/// whose (undirected) value is at most `alpha` times the best value
/// seen, sorted by value. Sides are canonicalized (node 0 excluded) so
/// each unordered cut appears once.
#[must_use]
pub fn enumerate_near_min_cuts<R: Rng>(
    g: &DiGraph,
    alpha: f64,
    trials: usize,
    rng: &mut R,
) -> Vec<(f64, NodeSet)> {
    assert!(alpha >= 1.0, "alpha must be ≥ 1");
    let mut seen = std::collections::HashMap::<NodeSet, f64>::new();
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let (v, side) = karger_stein_once(g, rng);
        best = best.min(v);
        seen.entry(side.canonical_cut_side()).or_insert(v);
    }
    let mut out: Vec<(f64, NodeSet)> =
        seen.into_iter().filter(|&(_, v)| v <= alpha * best + 1e-9).map(|(s, v)| (v, s)).collect();
    out.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN cut value"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::mincut::stoer_wagner;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn dumbbell() -> DiGraph {
        let mut g = DiGraph::new(6);
        let e = [(0, 1, 3.0), (1, 2, 3.0), (0, 2, 3.0), (3, 4, 3.0), (4, 5, 3.0), (3, 5, 3.0), (2, 3, 1.0)];
        for (u, v, w) in e {
            g.add_edge(NodeId::new(u), NodeId::new(v), w);
        }
        g
    }

    #[test]
    fn karger_finds_the_bridge_eventually() {
        let g = dumbbell();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut best = f64::INFINITY;
        for _ in 0..40 {
            let (v, _) = karger_once(&g, &mut rng);
            best = best.min(v);
        }
        assert!((best - 1.0).abs() < 1e-9);
    }

    #[test]
    fn karger_stein_matches_stoer_wagner_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for seed in 0..5u64 {
            let mut gen = ChaCha8Rng::seed_from_u64(seed);
            let n = 10;
            let mut g = DiGraph::new(n);
            for i in 0..n {
                for j in (i + 1)..n {
                    if gen.gen_bool(0.5) {
                        g.add_edge(NodeId::new(i), NodeId::new(j), gen.gen_range(0.5..3.0));
                    }
                }
            }
            // Ensure connectivity with a cycle.
            for i in 0..n {
                g.add_edge(NodeId::new(i), NodeId::new((i + 1) % n), 0.3);
            }
            let exact = stoer_wagner(&g).value;
            let mut best = f64::INFINITY;
            for _ in 0..30 {
                best = best.min(karger_stein_once(&g, &mut rng).0);
            }
            assert!((best - exact).abs() < 1e-6, "seed {seed}: KS {best} vs SW {exact}");
        }
    }

    #[test]
    fn enumeration_contains_the_min_cut_side() {
        let g = dumbbell();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let cuts = enumerate_near_min_cuts(&g, 1.0, 60, &mut rng);
        assert!(!cuts.is_empty());
        assert!((cuts[0].0 - 1.0).abs() < 1e-9);
        // The min cut side is one of the two triangles.
        assert_eq!(cuts[0].1.len(), 3);
    }

    #[test]
    fn enumeration_finds_multiple_near_min_cuts_on_cycle() {
        // An unweighted cycle has n(n-1)/2 minimum cuts of value 2.
        let n = 6;
        let mut g = DiGraph::new(n);
        for i in 0..n {
            g.add_edge(NodeId::new(i), NodeId::new((i + 1) % n), 1.0);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let cuts = enumerate_near_min_cuts(&g, 1.0, 400, &mut rng);
        assert!(cuts.len() >= 10, "found only {} of 15 min cuts", cuts.len());
        for (v, side) in &cuts {
            assert!((*v - 2.0).abs() < 1e-9);
            let (out, into) = g.cut_both(side);
            assert!((out + into - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn reported_value_matches_reported_side() {
        let g = dumbbell();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..10 {
            let (v, side) = karger_once(&g, &mut rng);
            let (out, into) = g.cut_both(&side);
            assert!((out + into - v).abs() < 1e-9);
            assert!(side.is_proper_cut());
        }
    }

    #[test]
    fn karger_stein_handles_moderate_sizes_quickly() {
        let mut gen = ChaCha8Rng::seed_from_u64(9);
        let n = 60;
        let mut g = DiGraph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if gen.gen_bool(0.2) {
                    g.add_edge(NodeId::new(i), NodeId::new(j), 1.0);
                }
            }
            g.add_edge(NodeId::new(i), NodeId::new((i + 1) % n), 1.0);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let cuts = enumerate_near_min_cuts(&g, 1.5, 15, &mut rng);
        assert!(!cuts.is_empty());
        let exact = stoer_wagner(&g).value;
        assert!(cuts[0].0 >= exact - 1e-9);
    }
}
