//! Randomized contraction min-cut (Karger, Karger–Stein) and
//! near-minimum-cut enumeration.
//!
//! The distributed min-cut application (Section 1 of the paper) relies
//! on the classic fact that at most `n^{O(C)}` cuts are within a factor
//! `C` of the minimum; Karger–Stein finds each with inverse-polynomial
//! probability, so repeating it enumerates all of them with high
//! probability. [`enumerate_near_min_cuts`] is exactly that loop.
//!
//! The contracted graph is kept as a dense symmetric weight matrix:
//! one contraction is `O(n)` (merge a row/column), so a full
//! Karger–Stein run is `O(n² log n)` — fast enough to repeat hundreds
//! of times inside the distributed coordinator.

use crate::digraph::DiGraph;
use crate::ids::NodeSet;
use crate::parallel;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A weighted undirected multigraph under contraction: flat dense
/// symmetric weight matrix over super-nodes plus the membership of
/// each. Kept in one allocation so recursive clones are cheap, and
/// compacted at each Karger–Stein recursion level so clone cost tracks
/// the *contracted* size, not the original.
#[derive(Debug, Clone)]
struct Contracted {
    /// Row-major symmetric pairwise weights (diagonal 0), stride `dim`.
    w: Vec<f64>,
    dim: usize,
    /// Weighted degree of each super-node.
    deg: Vec<f64>,
    /// Remaining super-node ids (indices into the current matrix).
    alive: Vec<usize>,
    /// Original nodes inside each super-node.
    groups: Vec<Vec<u32>>,
}

impl Contracted {
    fn from_digraph(g: &DiGraph) -> Self {
        let n = g.num_nodes();
        let mut w = vec![0.0f64; n * n];
        for e in g.edges() {
            let (u, v) = (e.from.index(), e.to.index());
            w[u * n + v] += e.weight;
            w[v * n + u] += e.weight;
        }
        let deg = (0..n).map(|u| w[u * n..(u + 1) * n].iter().sum()).collect();
        Self {
            w,
            dim: n,
            deg,
            alive: (0..n).collect(),
            groups: (0..n).map(|i| vec![i as u32]).collect(),
        }
    }

    fn num_alive(&self) -> usize {
        self.alive.len()
    }

    #[inline]
    fn weight(&self, u: usize, v: usize) -> f64 {
        self.w[u * self.dim + v]
    }

    fn total_weight(&self) -> f64 {
        self.alive.iter().map(|&u| self.deg[u]).sum::<f64>() / 2.0
    }

    /// Rebuilds the matrix over only the alive super-nodes, so clones
    /// deeper in the recursion copy `O(alive²)` instead of `O(n²)`.
    fn compacted(&self) -> Self {
        let k = self.alive.len();
        let mut w = vec![0.0f64; k * k];
        for (i, &a) in self.alive.iter().enumerate() {
            for (j, &b) in self.alive.iter().enumerate() {
                w[i * k + j] = self.weight(a, b);
            }
        }
        let deg = self.alive.iter().map(|&a| self.deg[a]).collect();
        let groups = self.alive.iter().map(|&a| self.groups[a].clone()).collect();
        Self {
            w,
            dim: k,
            deg,
            alive: (0..k).collect(),
            groups,
        }
    }

    /// Contracts a weight-proportional random edge. Returns `false` if
    /// no edge remains (disconnected remainder).
    fn contract_random_edge<R: Rng>(&mut self, rng: &mut R) -> bool {
        let total = self.total_weight();
        if total <= 0.0 {
            return false;
        }
        // Pick endpoint u ∝ weighted degree, then v ∝ w[u][v].
        let mut pick = rng.gen_range(0.0..2.0 * total);
        let mut u = *self.alive.last().expect("no alive nodes");
        for &cand in &self.alive {
            if pick < self.deg[cand] {
                u = cand;
                break;
            }
            pick -= self.deg[cand];
        }
        let mut pick = rng.gen_range(0.0..self.deg[u].max(f64::MIN_POSITIVE));
        let mut v = usize::MAX;
        for &cand in &self.alive {
            if cand == u {
                continue;
            }
            if pick < self.weight(u, cand) {
                v = cand;
                break;
            }
            pick -= self.weight(u, cand);
        }
        if v == usize::MAX {
            // Degenerate rounding: take the heaviest partner.
            v = *self
                .alive
                .iter()
                .filter(|&&c| c != u)
                .max_by(|&&a, &&b| {
                    self.weight(u, a)
                        .partial_cmp(&self.weight(u, b))
                        .expect("NaN")
                })
                .expect("at least 2 alive nodes");
            if self.weight(u, v) <= 0.0 {
                // Rounding drift in `deg[u]` (or an isolated-but-alive
                // u) landed us on a node with no positive neighbor. The
                // graph may still be connected — only declare it
                // disconnected after scanning *every* alive pair.
                return self.contract_heaviest_edge();
            }
        }
        self.merge(u, v);
        true
    }

    /// Fallback for when weight-proportional sampling fell through:
    /// contracts the globally heaviest remaining edge, or reports a
    /// genuinely disconnected remainder. Consumes no randomness.
    fn contract_heaviest_edge(&mut self) -> bool {
        let mut best = 0.0f64;
        let mut pair: Option<(usize, usize)> = None;
        for (i, &a) in self.alive.iter().enumerate() {
            for &b in &self.alive[i + 1..] {
                let w = self.weight(a, b);
                if w > best {
                    best = w;
                    pair = Some((a, b));
                }
            }
        }
        match pair {
            Some((a, b)) => {
                self.merge(a, b);
                true
            }
            None => false,
        }
    }

    /// Merges super-node `v` into `u` in `O(alive)`.
    fn merge(&mut self, u: usize, v: usize) {
        let moved = std::mem::take(&mut self.groups[v]);
        self.groups[u].extend(moved);
        self.alive.retain(|&x| x != v);
        // u absorbs v's edges.
        let d = self.dim;
        self.w[u * d + v] = 0.0;
        self.w[v * d + u] = 0.0;
        self.deg[v] = 0.0;
        for &x in &self.alive {
            if x == u {
                continue;
            }
            let add = self.w[v * d + x];
            if add > 0.0 {
                self.w[u * d + x] += add;
                self.w[x * d + u] = self.w[u * d + x];
                self.w[v * d + x] = 0.0;
                self.w[x * d + v] = 0.0;
            }
        }
        // Recompute u's degree from its row instead of the incremental
        // `deg[u] + deg[v] − 2·w[u][v]` update: with weights spanning
        // many orders of magnitude the incremental form accumulates
        // cancellation error until `deg` disagrees with the matrix and
        // the sampling loop falls through spuriously.
        self.deg[u] = self
            .alive
            .iter()
            .filter(|&&x| x != u)
            .map(|&x| self.w[u * d + x])
            .sum();
    }

    /// When exactly 2 super-nodes remain, the cut between them.
    fn final_cut(&self, n: usize) -> (f64, NodeSet) {
        debug_assert_eq!(self.num_alive(), 2);
        let (a, b) = (self.alive[0], self.alive[1]);
        let value = self.weight(a, b);
        let side = NodeSet::from_indices(n, self.groups[a].iter().map(|&x| x as usize));
        (value, side)
    }
}

/// One run of Karger's contraction algorithm. Returns `(cut value,
/// side)`; the value is the *undirected* (symmetrized) cut weight.
///
/// # Panics
/// Panics if the graph has < 2 nodes or is disconnected after
/// symmetrization (no contractible edges while > 2 super-nodes remain).
#[must_use]
pub fn karger_once<R: Rng>(g: &DiGraph, rng: &mut R) -> (f64, NodeSet) {
    let n = g.num_nodes();
    assert!(n >= 2, "min-cut needs ≥ 2 nodes");
    let mut c = Contracted::from_digraph(g);
    while c.num_alive() > 2 {
        assert!(c.contract_random_edge(rng), "graph is disconnected");
    }
    c.final_cut(n)
}

fn karger_stein_rec<R: Rng>(c: &Contracted, n: usize, rng: &mut R) -> Option<(f64, NodeSet)> {
    let k = c.num_alive();
    if k <= 6 {
        let mut best: Option<(f64, NodeSet)> = None;
        let compact = c.compacted();
        for _ in 0..16 {
            let mut cc = compact.clone();
            while cc.num_alive() > 2 {
                if !cc.contract_random_edge(rng) {
                    break;
                }
            }
            if cc.num_alive() == 2 {
                let cut = cc.final_cut(n);
                if best.as_ref().is_none_or(|(b, _)| cut.0 < *b) {
                    best = Some(cut);
                }
            }
        }
        return best;
    }
    let target = ((k as f64) / std::f64::consts::SQRT_2).ceil() as usize + 1;
    let mut best: Option<(f64, NodeSet)> = None;
    for _ in 0..2 {
        let mut cc = c.compacted();
        while cc.num_alive() > target {
            if !cc.contract_random_edge(rng) {
                break;
            }
        }
        if let Some(cut) = karger_stein_rec(&cc, n, rng) {
            if best.as_ref().is_none_or(|(b, _)| cut.0 < *b) {
                best = Some(cut);
            }
        }
    }
    best
}

/// One run of the Karger–Stein recursive contraction algorithm.
///
/// # Panics
/// Panics if the graph has < 2 nodes or no cut was found (the
/// symmetrization is disconnected).
#[must_use]
pub fn karger_stein_once<R: Rng>(g: &DiGraph, rng: &mut R) -> (f64, NodeSet) {
    let n = g.num_nodes();
    assert!(n >= 2, "min-cut needs ≥ 2 nodes");
    let c = Contracted::from_digraph(g);
    karger_stein_rec(&c, n, rng).expect("graph is disconnected")
}

/// Repeats Karger–Stein `trials` times and returns every *distinct* cut
/// whose (undirected) value is at most `alpha` times the best value
/// seen, sorted by value. Sides are canonicalized (node 0 excluded) so
/// each unordered cut appears once.
///
/// Trials run on [`parallel::default_threads`] workers. `rng` is used
/// only to draw one seed per trial up front — each trial then runs its
/// own [`ChaCha8Rng`] and the results merge in trial order, so for a
/// fixed master RNG state the output is bit-identical regardless of
/// thread count.
#[must_use]
pub fn enumerate_near_min_cuts<R: Rng>(
    g: &DiGraph,
    alpha: f64,
    trials: usize,
    rng: &mut R,
) -> Vec<(f64, NodeSet)> {
    enumerate_near_min_cuts_threaded(g, alpha, trials, rng, parallel::default_threads())
}

/// [`enumerate_near_min_cuts`] with an explicit worker count.
#[must_use]
pub fn enumerate_near_min_cuts_threaded<R: Rng>(
    g: &DiGraph,
    alpha: f64,
    trials: usize,
    rng: &mut R,
    threads: usize,
) -> Vec<(f64, NodeSet)> {
    assert!(alpha >= 1.0, "alpha must be ≥ 1");
    crate::stats::timed_stage("karger/enumerate_near_min_cuts", || {
        let seeds: Vec<u64> = (0..trials).map(|_| rng.gen()).collect();
        let results: Vec<(f64, NodeSet)> = parallel::run_indexed(trials, threads, |i| {
            let mut trial_rng = ChaCha8Rng::seed_from_u64(seeds[i]);
            karger_stein_once(g, &mut trial_rng)
        });
        // Merge in trial order (first trial to find a cut wins the
        // recorded value) so the output never depends on scheduling,
        // and sort stably so equal-value cuts keep discovery order.
        let mut seen = std::collections::HashSet::<NodeSet>::new();
        let mut distinct: Vec<(f64, NodeSet)> = Vec::new();
        let mut best = f64::INFINITY;
        for (v, side) in results {
            best = best.min(v);
            let key = side.canonical_cut_side();
            if seen.insert(key.clone()) {
                distinct.push((v, key));
            }
        }
        let mut out: Vec<(f64, NodeSet)> = distinct
            .into_iter()
            .filter(|&(v, _)| v <= alpha * best + 1e-9)
            .collect();
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN cut value"));
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::mincut::stoer_wagner;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn dumbbell() -> DiGraph {
        let mut g = DiGraph::new(6);
        let e = [
            (0, 1, 3.0),
            (1, 2, 3.0),
            (0, 2, 3.0),
            (3, 4, 3.0),
            (4, 5, 3.0),
            (3, 5, 3.0),
            (2, 3, 1.0),
        ];
        for (u, v, w) in e {
            g.add_edge(NodeId::new(u), NodeId::new(v), w);
        }
        g
    }

    #[test]
    fn karger_finds_the_bridge_eventually() {
        let g = dumbbell();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut best = f64::INFINITY;
        for _ in 0..40 {
            let (v, _) = karger_once(&g, &mut rng);
            best = best.min(v);
        }
        assert!((best - 1.0).abs() < 1e-9);
    }

    #[test]
    fn karger_stein_matches_stoer_wagner_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for seed in 0..5u64 {
            let mut gen = ChaCha8Rng::seed_from_u64(seed);
            let n = 10;
            let mut g = DiGraph::new(n);
            for i in 0..n {
                for j in (i + 1)..n {
                    if gen.gen_bool(0.5) {
                        g.add_edge(NodeId::new(i), NodeId::new(j), gen.gen_range(0.5..3.0));
                    }
                }
            }
            // Ensure connectivity with a cycle.
            for i in 0..n {
                g.add_edge(NodeId::new(i), NodeId::new((i + 1) % n), 0.3);
            }
            let exact = stoer_wagner(&g).value;
            let mut best = f64::INFINITY;
            for _ in 0..30 {
                best = best.min(karger_stein_once(&g, &mut rng).0);
            }
            assert!(
                (best - exact).abs() < 1e-6,
                "seed {seed}: KS {best} vs SW {exact}"
            );
        }
    }

    #[test]
    fn enumeration_contains_the_min_cut_side() {
        let g = dumbbell();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let cuts = enumerate_near_min_cuts(&g, 1.0, 60, &mut rng);
        assert!(!cuts.is_empty());
        assert!((cuts[0].0 - 1.0).abs() < 1e-9);
        // The min cut side is one of the two triangles.
        assert_eq!(cuts[0].1.len(), 3);
    }

    #[test]
    fn enumeration_finds_multiple_near_min_cuts_on_cycle() {
        // An unweighted cycle has n(n-1)/2 minimum cuts of value 2.
        let n = 6;
        let mut g = DiGraph::new(n);
        for i in 0..n {
            g.add_edge(NodeId::new(i), NodeId::new((i + 1) % n), 1.0);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let cuts = enumerate_near_min_cuts(&g, 1.0, 400, &mut rng);
        assert!(cuts.len() >= 10, "found only {} of 15 min cuts", cuts.len());
        for (v, side) in &cuts {
            assert!((*v - 2.0).abs() < 1e-9);
            let (out, into) = g.cut_both(side);
            assert!((out + into - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn reported_value_matches_reported_side() {
        let g = dumbbell();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..10 {
            let (v, side) = karger_once(&g, &mut rng);
            let (out, into) = g.cut_both(&side);
            assert!((out + into - v).abs() < 1e-9);
            assert!(side.is_proper_cut());
        }
    }

    #[test]
    fn contraction_survives_adversarially_tiny_weights() {
        // Regression: mixing weights 24 orders of magnitude apart made
        // the incremental degree bookkeeping drift away from the weight
        // matrix; the edge-sampling loop then fell through onto a
        // partner of weight ≤ 0 and `karger_once` panicked with "graph
        // is disconnected" on a connected graph. The merge now
        // recomputes degrees exactly and the sampler rescues itself by
        // scanning all alive pairs before giving up.
        let n = 12;
        let mut g = DiGraph::new(n);
        for i in 0..n {
            // A spanning cycle of near-epsilon edges keeps the graph
            // connected while contributing almost nothing to degrees.
            g.add_edge(NodeId::new(i), NodeId::new((i + 1) % n), 1e-12);
        }
        let mut gen = ChaCha8Rng::seed_from_u64(77);
        for i in 0..n {
            for j in (i + 2)..n {
                if gen.gen_bool(0.4) {
                    g.add_edge(
                        NodeId::new(i),
                        NodeId::new(j),
                        1e12 * gen.gen_range(0.5..2.0),
                    );
                }
            }
        }
        for seed in 0..200u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let (v, side) = karger_once(&g, &mut rng);
            assert!(side.is_proper_cut(), "seed {seed}");
            let (out, into) = g.cut_both(&side);
            assert!((out + into - v).abs() <= 1e-6 * (1.0 + v), "seed {seed}");
            let (v2, side2) = karger_stein_once(&g, &mut rng);
            assert!(side2.is_proper_cut(), "seed {seed}");
            assert!(v2.is_finite() && v2 >= 0.0, "seed {seed}");
        }
    }

    #[test]
    fn enumeration_is_thread_count_invariant() {
        let g = dumbbell();
        let reference = {
            let mut rng = ChaCha8Rng::seed_from_u64(21);
            enumerate_near_min_cuts_threaded(&g, 1.5, 48, &mut rng, 1)
        };
        assert!(!reference.is_empty());
        for threads in [2usize, 8] {
            let mut rng = ChaCha8Rng::seed_from_u64(21);
            let cuts = enumerate_near_min_cuts_threaded(&g, 1.5, 48, &mut rng, threads);
            assert_eq!(cuts.len(), reference.len(), "threads {threads}");
            for ((v1, s1), (v2, s2)) in reference.iter().zip(&cuts) {
                assert_eq!(v1.to_bits(), v2.to_bits(), "threads {threads}");
                assert_eq!(s1, s2, "threads {threads}");
            }
        }
    }

    #[test]
    fn karger_stein_handles_moderate_sizes_quickly() {
        let mut gen = ChaCha8Rng::seed_from_u64(9);
        let n = 60;
        let mut g = DiGraph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if gen.gen_bool(0.2) {
                    g.add_edge(NodeId::new(i), NodeId::new(j), 1.0);
                }
            }
            g.add_edge(NodeId::new(i), NodeId::new((i + 1) % n), 1.0);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let cuts = enumerate_near_min_cuts(&g, 1.5, 15, &mut rng);
        assert!(!cuts.is_empty());
        let exact = stoer_wagner(&g).value;
        assert!(cuts[0].0 >= exact - 1e-9);
    }
}
