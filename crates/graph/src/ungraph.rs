//! Unweighted undirected simple graphs.
//!
//! The local query model of Section 5 of the paper is defined over
//! *unweighted, undirected* graphs with degree / i-th-neighbor /
//! adjacency queries, so those graphs get their own compact type with
//! a stable neighbor ordering (the ordering is part of the oracle's
//! contract: "the `i`-th neighbor of `u`").

use crate::ids::{NodeId, NodeSet};
use std::collections::HashSet;

/// An unweighted undirected simple graph with ordered adjacency lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnGraph {
    n: usize,
    adj: Vec<Vec<NodeId>>,
    edge_set: HashSet<(u32, u32)>,
    m: usize,
}

impl UnGraph {
    /// An empty graph on `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            adj: vec![Vec::new(); n],
            edge_set: HashSet::new(),
            m: 0,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n).map(NodeId::new)
    }

    /// Adds the undirected edge `{u, v}`. Returns `false` (and does
    /// nothing) if the edge already exists.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or self-loops.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(
            u.index() < self.n && v.index() < self.n,
            "endpoint out of range"
        );
        assert!(u != v, "self-loops are not allowed");
        let key = (u.0.min(v.0), u.0.max(v.0));
        if !self.edge_set.insert(key) {
            return false;
        }
        self.adj[u.index()].push(v);
        self.adj[v.index()].push(u);
        self.m += 1;
        true
    }

    /// Whether the edge `{u, v}` exists.
    #[must_use]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v || u.index() >= self.n || v.index() >= self.n {
            return false;
        }
        self.edge_set.contains(&(u.0.min(v.0), u.0.max(v.0)))
    }

    /// Degree of `u`.
    #[must_use]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u.index()].len()
    }

    /// The `i`-th neighbor of `u` in insertion order, or `None` past
    /// the degree — exactly the oracle's edge-query semantics.
    #[must_use]
    pub fn ith_neighbor(&self, u: NodeId, i: usize) -> Option<NodeId> {
        self.adj[u.index()].get(i).copied()
    }

    /// Ordered adjacency list of `u`.
    #[must_use]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adj[u.index()]
    }

    /// Iterator over each undirected edge once, as `(min, max)` pairs
    /// in arbitrary order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj.iter().enumerate().flat_map(move |(u, nbrs)| {
            nbrs.iter()
                .filter(move |v| v.index() > u)
                .map(move |&v| (NodeId::new(u), v))
        })
    }

    /// The (undirected, unweighted) cut size `|E(S, V∖S)|`.
    #[must_use]
    pub fn cut_size(&self, s: &NodeSet) -> usize {
        assert_eq!(s.universe(), self.n, "node-set universe mismatch");
        self.edges()
            .filter(|&(u, v)| s.contains(u) != s.contains(v))
            .count()
    }

    /// Converts to a directed graph with a unit-weight arc in each
    /// direction (the standard reduction for flow computations).
    #[must_use]
    pub fn to_bidirected(&self) -> crate::digraph::DiGraph {
        let mut g = crate::digraph::DiGraph::with_edge_capacity(self.n, 2 * self.m);
        for (u, v) in self.edges() {
            g.add_edge(u, v, 1.0);
            g.add_edge(v, u, 1.0);
        }
        g
    }

    /// Whether the graph is connected (vacuously true for `n ≤ 1`).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> UnGraph {
        let mut g = UnGraph::new(4);
        g.add_edge(NodeId::new(0), NodeId::new(1));
        g.add_edge(NodeId::new(1), NodeId::new(2));
        g.add_edge(NodeId::new(2), NodeId::new(3));
        g
    }

    #[test]
    fn add_and_query_edges() {
        let g = path4();
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(NodeId::new(1), NodeId::new(0)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(2)));
        assert_eq!(g.degree(NodeId::new(1)), 2);
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut g = path4();
        assert!(!g.add_edge(NodeId::new(1), NodeId::new(0)));
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(NodeId::new(0)), 1);
    }

    #[test]
    fn ith_neighbor_is_ordered_and_bounded() {
        let g = path4();
        assert_eq!(g.ith_neighbor(NodeId::new(1), 0), Some(NodeId::new(0)));
        assert_eq!(g.ith_neighbor(NodeId::new(1), 1), Some(NodeId::new(2)));
        assert_eq!(g.ith_neighbor(NodeId::new(1), 2), None);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = path4();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es.len(), 3);
        for (u, v) in es {
            assert!(u.index() < v.index());
        }
    }

    #[test]
    fn cut_size_on_path() {
        let g = path4();
        assert_eq!(g.cut_size(&NodeSet::from_indices(4, [0, 1])), 1);
        assert_eq!(g.cut_size(&NodeSet::from_indices(4, [0, 2])), 3);
    }

    #[test]
    fn bidirected_doubles_edges() {
        let g = path4();
        let d = g.to_bidirected();
        assert_eq!(d.num_edges(), 6);
        assert_eq!(d.total_weight(), 6.0);
    }

    #[test]
    fn connectivity() {
        assert!(path4().is_connected());
        let mut g = UnGraph::new(4);
        g.add_edge(NodeId::new(0), NodeId::new(1));
        assert!(!g.is_connected());
        assert!(UnGraph::new(1).is_connected());
    }
}
