//! Strongly-typed node/edge identifiers and a compact node-set bitset.

use std::fmt;

/// Identifier of a vertex in a graph with at most `u32::MAX` vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Creates a node id from an index.
    ///
    /// # Panics
    /// Panics if `idx` does not fit in `u32`.
    #[must_use]
    pub fn new(idx: usize) -> Self {
        Self(u32::try_from(idx).expect("node index overflows u32"))
    }

    /// The index as `usize` (for slice indexing).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(idx: usize) -> Self {
        Self::new(idx)
    }
}

/// Identifier of an edge (an index into a graph's edge list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Creates an edge id from an index.
    ///
    /// # Panics
    /// Panics if `idx` does not fit in `u32`.
    #[must_use]
    pub fn new(idx: usize) -> Self {
        Self(u32::try_from(idx).expect("edge index overflows u32"))
    }

    /// The index as `usize`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A set of nodes over a fixed universe `{0, …, n−1}`, stored as a
/// bitset. This is the `S ⊂ V` of every cut query in the paper.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct NodeSet {
    words: Vec<u64>,
    universe: usize,
}

impl NodeSet {
    /// The empty set over a universe of `n` nodes.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        Self {
            words: vec![0; n.div_ceil(64)],
            universe: n,
        }
    }

    /// The full set `{0, …, n−1}`.
    #[must_use]
    pub fn full(n: usize) -> Self {
        let mut s = Self::empty(n);
        for i in 0..n {
            s.insert(NodeId::new(i));
        }
        s
    }

    /// Builds a set from node indices.
    #[must_use]
    pub fn from_indices(n: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut s = Self::empty(n);
        for i in indices {
            s.insert(NodeId::new(i));
        }
        s
    }

    /// Size of the universe this set lives in.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The raw bitset words (little-endian bit order,
    /// `universe.div_ceil(64)` of them). Used as the memo key for
    /// cached cut queries — two sets over the same universe are equal
    /// iff their words are — and as the wire representation of a query
    /// set. Round-trips through [`NodeSet::from_words`].
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a set from its raw bitset words over a universe of `n`
    /// nodes (the wire-decode path of the serve protocol). Returns
    /// `None` when the word count is not exactly `n.div_ceil(64)` or
    /// any bit at index ≥ `n` is set, so an adversarial payload can
    /// never produce a set that violates the `NodeSet` invariants.
    #[must_use]
    pub fn from_words(n: usize, words: Vec<u64>) -> Option<Self> {
        if words.len() != n.div_ceil(64) {
            return None;
        }
        let spare = words.len() * 64 - n;
        if spare > 0 && words[words.len() - 1] & !(u64::MAX >> spare) != 0 {
            return None;
        }
        Some(Self { words, universe: n })
    }

    /// Inserts a node; returns whether it was newly inserted.
    pub fn insert(&mut self, v: NodeId) -> bool {
        let i = v.index();
        assert!(
            i < self.universe,
            "node {i} outside universe {}",
            self.universe
        );
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes a node; returns whether it was present.
    pub fn remove(&mut self, v: NodeId) -> bool {
        let i = v.index();
        assert!(
            i < self.universe,
            "node {i} outside universe {}",
            self.universe
        );
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, v: NodeId) -> bool {
        let i = v.index();
        if i >= self.universe {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether the set is a *proper* cut side: neither empty nor full.
    #[must_use]
    pub fn is_proper_cut(&self) -> bool {
        let l = self.len();
        l > 0 && l < self.universe
    }

    /// The complement `V \ S` within the universe.
    #[must_use]
    pub fn complement(&self) -> Self {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        // Clear bits beyond the universe.
        let spare = out.words.len() * 64 - out.universe;
        if spare > 0 {
            let last = out.words.len() - 1;
            out.words[last] &= u64::MAX >> spare;
        }
        out
    }

    /// In-place union with another set over the same universe.
    pub fn union_with(&mut self, other: &Self) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Iterator over members in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(NodeId::new(wi * 64 + b))
                }
            })
        })
    }

    /// Canonical form of a 2-partition: the side *not* containing node 0.
    ///
    /// Two node sets describe the same unordered cut iff their canonical
    /// forms are equal; used to deduplicate enumerated cuts.
    #[must_use]
    pub fn canonical_cut_side(&self) -> Self {
        if self.contains(NodeId::new(0)) {
            self.complement()
        } else {
            self.clone()
        }
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeSet{{")?;
        for (k, v) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", v.0)?;
        }
        write!(f, "}}/{}", self.universe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::empty(100);
        assert!(s.insert(NodeId::new(7)));
        assert!(!s.insert(NodeId::new(7)));
        assert!(s.contains(NodeId::new(7)));
        assert!(!s.contains(NodeId::new(8)));
        assert!(s.remove(NodeId::new(7)));
        assert!(!s.remove(NodeId::new(7)));
        assert!(s.is_empty());
    }

    #[test]
    fn len_counts_members() {
        let s = NodeSet::from_indices(70, [0, 63, 64, 69]);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn complement_respects_universe() {
        let s = NodeSet::from_indices(70, [1, 3]);
        let c = s.complement();
        assert_eq!(c.len(), 68);
        assert!(!c.contains(NodeId::new(1)));
        assert!(c.contains(NodeId::new(0)));
        assert!(c.contains(NodeId::new(69)));
        // Double complement is identity.
        assert_eq!(c.complement(), s);
    }

    #[test]
    fn iter_visits_in_order() {
        let s = NodeSet::from_indices(200, [5, 150, 64, 7]);
        let got: Vec<usize> = s.iter().map(NodeId::index).collect();
        assert_eq!(got, vec![5, 7, 64, 150]);
    }

    #[test]
    fn proper_cut_detection() {
        assert!(!NodeSet::empty(4).is_proper_cut());
        assert!(!NodeSet::full(4).is_proper_cut());
        assert!(NodeSet::from_indices(4, [2]).is_proper_cut());
    }

    #[test]
    fn canonical_cut_sides_match() {
        let s = NodeSet::from_indices(6, [0, 2, 4]);
        let c = s.complement();
        assert_eq!(s.canonical_cut_side(), c.canonical_cut_side());
        assert!(!s.canonical_cut_side().contains(NodeId::new(0)));
    }

    #[test]
    fn words_round_trip_through_from_words() {
        let s = NodeSet::from_indices(70, [0, 63, 64, 69]);
        let back = NodeSet::from_words(70, s.words().to_vec()).unwrap();
        assert_eq!(back, s);
        // Wrong word count and spare-bit garbage are both rejected.
        assert!(NodeSet::from_words(70, vec![0; 1]).is_none());
        assert!(NodeSet::from_words(70, vec![0; 3]).is_none());
        assert!(NodeSet::from_words(70, vec![0, 1 << 6]).is_none());
        assert!(NodeSet::from_words(70, vec![0, 1 << 5]).is_some());
        assert!(NodeSet::from_words(0, Vec::new()).is_some());
    }

    #[test]
    fn union_with_combines() {
        let mut a = NodeSet::from_indices(10, [1, 2]);
        let b = NodeSet::from_indices(10, [2, 9]);
        a.union_with(&b);
        assert_eq!(a, NodeSet::from_indices(10, [1, 2, 9]));
    }
}
