//! Graph substrate for the `dircut` workspace.
//!
//! Weighted directed multigraphs ([`DiGraph`]), unweighted undirected
//! graphs for the local query model ([`UnGraph`]), node-set cuts,
//! max-flow with capacity snapshots, a deterministic parallel solve
//! engine ([`parallel`], [`stats`]), global min-cut (deterministic and
//! randomized), β-balance
//! certificates (Definition 2.1 of the paper), sparse certificates, and
//! generators for every graph family the experiments need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod connectivity;
pub mod digraph;
pub mod flow;
pub mod generators;
pub mod gomory_hu;
pub mod ids;
pub mod io;
pub mod karger;
pub mod mincut;
pub mod nagamochi;
pub mod parallel;
pub mod push_relabel;
pub mod stats;
pub mod ungraph;

pub use digraph::{DiGraph, Edge};
pub use ids::{EdgeId, NodeId, NodeSet};
pub use ungraph::UnGraph;
