//! Graph substrate for the `dircut` workspace.
//!
//! Weighted directed multigraphs ([`DiGraph`]) with a lazily built CSR
//! adjacency view, unweighted undirected
//! graphs for the local query model ([`UnGraph`]), node-set cuts and
//! the word-parallel batched cut kernel ([`cuteval`]),
//! max-flow with capacity snapshots behind a swappable backend trait
//! ([`MaxFlow`]), a deterministic parallel solve
//! engine ([`parallel`], [`stats`]), global min-cut (deterministic and
//! randomized), β-balance
//! certificates (Definition 2.1 of the paper), sparse certificates, and
//! generators for every graph family the experiments need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod cache;
pub mod connectivity;
pub mod cuteval;
pub mod digraph;
pub mod error;
pub mod families;
pub mod flow;
pub mod generators;
pub mod gomory_hu;
pub mod ids;
pub mod io;
pub mod karger;
pub mod mincut;
pub mod nagamochi;
pub mod parallel;
pub mod push_relabel;
pub mod snapshot;
pub mod stats;
pub mod ungraph;

pub use digraph::{Csr, DiGraph, Edge, UniverseMismatch};
pub use families::FamilySpec;
pub use flow::MaxFlow;
pub use ids::{EdgeId, NodeId, NodeSet};
pub use snapshot::{CsrSnapshot, SnapshotReader, SnapshotStore};
pub use ungraph::UnGraph;
