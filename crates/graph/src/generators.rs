//! Graph generators: random graphs, balanced digraphs, Eulerian
//! circulations, and the bipartite shells the paper's gadgets use.

use crate::digraph::DiGraph;
use crate::ids::NodeId;
use crate::ungraph::UnGraph;
use rand::seq::SliceRandom;
use rand::Rng;

/// Erdős–Rényi `G(n, p)` undirected graph.
#[must_use]
pub fn gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> UnGraph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    let mut g = UnGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(NodeId::new(u), NodeId::new(v));
            }
        }
    }
    g
}

/// `G(n, p)` with a Hamiltonian cycle added, guaranteeing connectivity.
#[must_use]
pub fn connected_gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> UnGraph {
    let mut g = gnp(n, p, rng);
    for i in 0..n {
        g.add_edge(NodeId::new(i), NodeId::new((i + 1) % n));
    }
    g
}

/// A random β-balanced digraph: each unordered pair gets, with
/// probability `p`, a forward edge of weight in `[1, 2]` and a backward
/// edge of `forward / β`, plus a balanced Hamiltonian bicycle so the
/// result is strongly connected.
///
/// The edgewise certificate of the result is exactly `β`
/// (see [`crate::balance::edgewise_balance_bound`]).
#[must_use]
pub fn random_balanced_digraph<R: Rng>(n: usize, p: f64, beta: f64, rng: &mut R) -> DiGraph {
    assert!(beta >= 1.0, "β must be ≥ 1");
    assert!(n >= 2);
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                let w = rng.gen_range(1.0..2.0);
                g.add_edge(NodeId::new(u), NodeId::new(v), w);
                g.add_edge(NodeId::new(v), NodeId::new(u), w / beta);
            }
        }
    }
    for i in 0..n {
        let (u, v) = (NodeId::new(i), NodeId::new((i + 1) % n));
        let w = rng.gen_range(1.0..2.0);
        g.add_edge(u, v, w);
        g.add_edge(v, u, w / beta);
    }
    g
}

/// A random Eulerian (1-balanced) circulation: the sum of `cycles`
/// random directed cycles, each with a common random weight.
#[must_use]
pub fn random_eulerian_digraph<R: Rng>(n: usize, cycles: usize, rng: &mut R) -> DiGraph {
    assert!(n >= 3, "cycles need ≥ 3 nodes");
    let mut g = DiGraph::new(n);
    for _ in 0..cycles {
        let len = rng.gen_range(3..=n);
        let mut nodes: Vec<usize> = (0..n).collect();
        nodes.shuffle(rng);
        nodes.truncate(len);
        let w = rng.gen_range(0.5..2.0);
        for i in 0..len {
            g.add_edge(NodeId::new(nodes[i]), NodeId::new(nodes[(i + 1) % len]), w);
        }
    }
    // Always include the full cycle so the graph is strongly connected.
    let w = rng.gen_range(0.5..2.0);
    for i in 0..n {
        g.add_edge(NodeId::new(i), NodeId::new((i + 1) % n), w);
    }
    g.coalesced()
}

/// A complete directed bipartite graph between node ranges
/// `left` and `right` (which must be disjoint), with constant forward
/// weight `fwd` (left→right) and backward weight `bwd` (right→left),
/// added into an existing graph.
pub fn add_complete_bipartite(
    g: &mut DiGraph,
    left: std::ops::Range<usize>,
    right: std::ops::Range<usize>,
    fwd: f64,
    bwd: f64,
) {
    assert!(
        left.end <= right.start || right.end <= left.start,
        "node ranges must be disjoint"
    );
    for u in left {
        for v in right.clone() {
            if fwd > 0.0 {
                g.add_edge(NodeId::new(u), NodeId::new(v), fwd);
            }
            if bwd > 0.0 {
                g.add_edge(NodeId::new(v), NodeId::new(u), bwd);
            }
        }
    }
}

/// A random `d`-regular-ish undirected graph via the pairing model
/// (retrying collisions); degrees may be slightly less than `d` when a
/// perfect pairing fails, but the graph is simple.
#[must_use]
pub fn random_near_regular<R: Rng>(n: usize, d: usize, rng: &mut R) -> UnGraph {
    assert!(d < n, "degree must be < n");
    let mut g = UnGraph::new(n);
    let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    for _ in 0..20 {
        stubs.shuffle(rng);
        let mut leftover = Vec::new();
        for pair in stubs.chunks(2) {
            if let [u, v] = *pair {
                if u != v && !g.has_edge(NodeId::new(u), NodeId::new(v)) {
                    g.add_edge(NodeId::new(u), NodeId::new(v));
                } else {
                    leftover.push(u);
                    leftover.push(v);
                }
            }
        }
        if leftover.len() < 2 {
            break;
        }
        stubs = leftover;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{edgewise_balance_bound, exact_balance_factor, is_eulerian};
    use crate::connectivity::is_strongly_connected;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn gnp_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(gnp(10, 0.0, &mut rng).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).num_edges(), 45);
    }

    #[test]
    fn connected_gnp_is_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..5 {
            assert!(connected_gnp(20, 0.05, &mut rng).is_connected());
        }
    }

    #[test]
    fn balanced_digraph_certificate_is_beta() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = random_balanced_digraph(12, 0.4, 7.0, &mut rng);
        assert!(is_strongly_connected(&g));
        let cert = edgewise_balance_bound(&g).unwrap();
        assert!((cert - 7.0).abs() < 1e-9, "certificate {cert}");
    }

    #[test]
    fn balanced_digraph_exact_factor_at_most_beta() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = random_balanced_digraph(8, 0.5, 4.0, &mut rng);
        let exact = exact_balance_factor(&g);
        assert!(exact <= 4.0 + 1e-9, "exact {exact}");
    }

    #[test]
    fn eulerian_generator_is_eulerian_and_strongly_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = random_eulerian_digraph(10, 5, &mut rng);
        assert!(is_eulerian(&g));
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn eulerian_generator_is_one_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = random_eulerian_digraph(7, 3, &mut rng);
        let exact = exact_balance_factor(&g);
        assert!(
            (exact - 1.0).abs() < 1e-9,
            "Eulerian graph has balance {exact}"
        );
    }

    #[test]
    fn complete_bipartite_shell() {
        let mut g = DiGraph::new(6);
        add_complete_bipartite(&mut g, 0..3, 3..6, 2.0, 0.5);
        assert_eq!(g.num_edges(), 18);
        assert_eq!(g.pair_weight(NodeId::new(0), NodeId::new(4)), 2.0);
        assert_eq!(g.pair_weight(NodeId::new(4), NodeId::new(0)), 0.5);
        assert_eq!(edgewise_balance_bound(&g), Some(4.0));
    }

    #[test]
    fn near_regular_degrees_are_close() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = random_near_regular(30, 6, &mut rng);
        for v in g.nodes() {
            assert!(g.degree(v) <= 6);
            assert!(g.degree(v) >= 4, "degree {} too low", g.degree(v));
        }
    }
}
