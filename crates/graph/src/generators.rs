//! Graph generators: random graphs, balanced digraphs, Eulerian
//! circulations, and the bipartite shells the paper's gadgets use.

use crate::digraph::DiGraph;
use crate::ids::NodeId;
use crate::ungraph::UnGraph;
use rand::seq::SliceRandom;
use rand::Rng;

/// Erdős–Rényi `G(n, p)` undirected graph.
#[must_use]
pub fn gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> UnGraph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    let mut g = UnGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(NodeId::new(u), NodeId::new(v));
            }
        }
    }
    g
}

/// `G(n, p)` with a Hamiltonian cycle added, guaranteeing connectivity.
#[must_use]
pub fn connected_gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> UnGraph {
    let mut g = gnp(n, p, rng);
    for i in 0..n {
        g.add_edge(NodeId::new(i), NodeId::new((i + 1) % n));
    }
    g
}

/// A random β-balanced digraph: each unordered pair gets, with
/// probability `p`, a forward edge of weight drawn uniformly from the
/// half-open interval `[1, 2)` and a backward edge of `forward / β`,
/// plus a balanced Hamiltonian bicycle so the result is strongly
/// connected.
///
/// The edgewise certificate of the result is exactly `β`
/// (see [`crate::balance::edgewise_balance_bound`]).
#[must_use]
pub fn random_balanced_digraph<R: Rng>(n: usize, p: f64, beta: f64, rng: &mut R) -> DiGraph {
    assert!(beta >= 1.0, "β must be ≥ 1");
    assert!(n >= 2);
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                let w = rng.gen_range(1.0..2.0);
                g.add_edge(NodeId::new(u), NodeId::new(v), w);
                g.add_edge(NodeId::new(v), NodeId::new(u), w / beta);
            }
        }
    }
    for i in 0..n {
        let (u, v) = (NodeId::new(i), NodeId::new((i + 1) % n));
        let w = rng.gen_range(1.0..2.0);
        g.add_edge(u, v, w);
        g.add_edge(v, u, w / beta);
    }
    g
}

/// A random Eulerian (1-balanced) circulation: the sum of `cycles`
/// random directed cycles, each with a common random weight drawn
/// uniformly from the half-open interval `[0.5, 2)`.
#[must_use]
pub fn random_eulerian_digraph<R: Rng>(n: usize, cycles: usize, rng: &mut R) -> DiGraph {
    assert!(n >= 3, "cycles need ≥ 3 nodes");
    let mut g = DiGraph::new(n);
    for _ in 0..cycles {
        let len = rng.gen_range(3..=n);
        let mut nodes: Vec<usize> = (0..n).collect();
        nodes.shuffle(rng);
        nodes.truncate(len);
        let w = rng.gen_range(0.5..2.0);
        for i in 0..len {
            g.add_edge(NodeId::new(nodes[i]), NodeId::new(nodes[(i + 1) % len]), w);
        }
    }
    // Always include the full cycle so the graph is strongly connected.
    let w = rng.gen_range(0.5..2.0);
    for i in 0..n {
        g.add_edge(NodeId::new(i), NodeId::new((i + 1) % n), w);
    }
    g.coalesced()
}

/// A complete directed bipartite graph between node ranges
/// `left` and `right` (which must be disjoint), with constant forward
/// weight `fwd` (left→right) and backward weight `bwd` (right→left),
/// added into an existing graph.
pub fn add_complete_bipartite(
    g: &mut DiGraph,
    left: std::ops::Range<usize>,
    right: std::ops::Range<usize>,
    fwd: f64,
    bwd: f64,
) {
    assert!(
        left.end <= right.start || right.end <= left.start,
        "node ranges must be disjoint"
    );
    for u in left {
        for v in right.clone() {
            if fwd > 0.0 {
                g.add_edge(NodeId::new(u), NodeId::new(v), fwd);
            }
            if bwd > 0.0 {
                g.add_edge(NodeId::new(v), NodeId::new(u), bwd);
            }
        }
    }
}

/// A random `d`-regular-ish undirected graph via the pairing model
/// (retrying collisions); degrees may be slightly less than `d` when a
/// perfect pairing fails, but the graph is simple.
///
/// Guarantee: every degree is at most `d`. When `n·d` is odd a perfect
/// pairing cannot exist, so the stub multiset is rounded down to an
/// even size up front (vertex `n − 1` loses one stub) instead of a
/// dangling stub silently surviving every pairing round; the total
/// degree is therefore at most `n·d − (n·d mod 2)` and always even.
#[must_use]
pub fn random_near_regular<R: Rng>(n: usize, d: usize, rng: &mut R) -> UnGraph {
    assert!(d < n, "degree must be < n");
    let mut g = UnGraph::new(n);
    let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    if stubs.len() % 2 == 1 {
        // Odd n·d: `chunks(2)` would end on a singleton chunk that the
        // `[u, v]` pattern silently skips. Round down to an even stub
        // budget so every pairing round consumes its whole list.
        stubs.pop();
    }
    for _ in 0..20 {
        stubs.shuffle(rng);
        let mut leftover = Vec::new();
        for pair in stubs.chunks(2) {
            if let [u, v] = *pair {
                if u != v && !g.has_edge(NodeId::new(u), NodeId::new(v)) {
                    g.add_edge(NodeId::new(u), NodeId::new(v));
                } else {
                    leftover.push(u);
                    leftover.push(v);
                }
            }
        }
        if leftover.len() < 2 {
            break;
        }
        stubs = leftover;
    }
    g
}

/// A complete directed bipartite shell between two *explicit* node
/// lists — the non-contiguous generalisation of
/// [`add_complete_bipartite`] the bit-gadget construction streams its
/// layers through. Every `left[i] → right[j]` edge gets weight `fwd`
/// and every `right[j] → left[i]` edge gets weight `bwd`; zero weights
/// are skipped so purely one-directional shells stay sparse.
pub fn add_complete_bipartite_sets(
    g: &mut DiGraph,
    left: &[usize],
    right: &[usize],
    fwd: f64,
    bwd: f64,
) {
    for &u in left {
        for &v in right {
            assert_ne!(u, v, "bipartite sides must be disjoint");
            if fwd > 0.0 {
                g.add_edge(NodeId::new(u), NodeId::new(v), fwd);
            }
            if bwd > 0.0 {
                g.add_edge(NodeId::new(v), NodeId::new(u), bwd);
            }
        }
    }
}

/// Number of nodes of [`bit_gadget`]`(bits)`: `2^bits` left words,
/// `2^bits` right words, and `2·bits` bit nodes.
#[must_use]
pub fn bit_gadget_nodes(bits: usize) -> usize {
    2 * (1usize << bits) + 2 * bits
}

/// Weight of one light `ℓ_0 → bit` edge of [`bit_gadget`]`(bits)`.
#[must_use]
pub fn bit_gadget_light(bits: usize) -> f64 {
    0.5 / bits as f64
}

/// Weight of one heavy return/spine edge of [`bit_gadget`]`(bits)`.
#[must_use]
pub fn bit_gadget_heavy(bits: usize) -> f64 {
    2.0 * bits as f64
}

/// Closed-form global directed min cut of [`bit_gadget`]`(bits)`:
/// the out-cut of the singleton side `{ℓ_0}`, i.e. `bits` light edges
/// of weight `0.5/bits` — exactly `1/2` up to float rounding. For
/// `bits ≥ 2` every other directed cut has value ≥ 1 (see the
/// [`bit_gadget`] docs), so the minimiser is unique.
///
/// Computed as the same repeated f64 addition a kernel edge scan
/// performs, so comparisons against measured cut values need only a
/// tiny tolerance.
#[must_use]
pub fn bit_gadget_min_cut(bits: usize) -> f64 {
    (0..bits).fold(0.0, |acc, _| acc + bit_gadget_light(bits))
}

/// Closed-form global directed min cut of
/// [`bit_gadget_balanced`]`(bits, beta)`: the `{ℓ_0}` side gains the
/// mirrored copies of its two heavy in-edges, `2 · heavy/β` on top of
/// [`bit_gadget_min_cut`].
#[must_use]
pub fn bit_gadget_balanced_min_cut(bits: usize, beta: f64) -> f64 {
    bit_gadget_min_cut(bits) + 2.0 * (bit_gadget_heavy(bits) / beta)
}

fn build_bit_gadget(bits: usize, mirror_beta: Option<f64>) -> DiGraph {
    assert!(bits >= 1, "the gadget needs at least one bit");
    assert!(bits < 20, "2^bits words must stay addressable");
    let k = 1usize << bits;
    let light = bit_gadget_light(bits);
    let heavy = bit_gadget_heavy(bits);
    // Layout: left words ℓ_j at j, right words r_j at k + j, bit nodes
    // bit[i][c] at 2k + 2i + c.
    let ell = |j: usize| j;
    let r = |j: usize| k + j;
    let bit_node = |i: usize, c: usize| 2 * k + 2 * i + c;
    let mut g = DiGraph::new(bit_gadget_nodes(bits));
    let add = |g: &mut DiGraph, u: usize, v: usize, w: f64| {
        g.add_edge(NodeId::new(u), NodeId::new(v), w);
        if let Some(beta) = mirror_beta {
            g.add_edge(NodeId::new(v), NodeId::new(u), w / beta);
        }
    };
    // Encoding layer: ℓ_j streams its index's bit pattern, one shell
    // per (bit, value) class. ℓ_0's fan-out is light — its out-cut is
    // the designed global minimum.
    for i in 0..bits {
        for c in 0..2 {
            let lefts: Vec<usize> = (0..k).filter(|j| (j >> i) & 1 == c).map(ell).collect();
            for &u in &lefts {
                add(&mut g, u, bit_node(i, c), if u == ell(0) { light } else { 1.0 });
            }
            // Decoding layer: bit[i][c] fans out to every right word
            // whose index agrees on bit i — a complete bipartite shell.
            let rights: Vec<usize> = (0..k).filter(|j| (j >> i) & 1 == c).map(r).collect();
            let hub = [bit_node(i, c)];
            let (fwd, bwd) = (1.0, mirror_beta.map_or(0.0, |b| 1.0 / b));
            add_complete_bipartite_sets(&mut g, &hub, &rights, fwd, bwd);
        }
    }
    // Heavy return + spine edges: r_j closes its own word's cycle and
    // hands off to the next word, making the gadget strongly connected
    // without creating any cut cheaper than a light fan-out.
    for j in 0..k {
        add(&mut g, r(j), ell(j), heavy);
        add(&mut g, r(j), ell((j + 1) % k), heavy);
    }
    g
}

/// The bit-gadget digraph of Abboud–Censor-Hillel–Khoury–Paz
/// (arXiv 1901.01630): the maximally adversarial small-cut instance
/// for sketch/communication algorithms, built from complete-bipartite
/// shells between word nodes and bit nodes.
///
/// With `k = 2^bits` the graph has `k` left words `ℓ_j`, `k` right
/// words `r_j`, and `2·bits` bit nodes `bit[i][c]`:
///
/// * `ℓ_j → bit[i][j_i]` (weight 1; `ℓ_0`'s fan-out is `0.5/bits`),
/// * `bit[i][c] → r_j` for every `j` with `j_i = c` (weight 1),
/// * heavy return `r_j → ℓ_j` and spine `r_j → ℓ_{j+1 mod k}` edges of
///   weight `2·bits`.
///
/// The construction is deterministic. Verified structural properties
/// (pinned by tests against the closed forms):
///
/// * strongly connected for every `bits ≥ 1`;
/// * the global directed min cut value is
///   [`bit_gadget_min_cut`]`(bits)` (= `1/2` up to rounding), attained
///   by the out-cut of `{ℓ_0}`. For `bits ≥ 2` that minimiser is
///   unique and every other directed cut is ≥ 1: any side without
///   `ℓ_0` cuts only weight-≥1 edges, and a side with `ℓ_0` that pays
///   less than 1 can violate no ≥1-weight constraint (a heavy edge
///   leaving `S`, a bit node missing a matching right word, a word
///   missing a bit node), whose closure forces `S = {ℓ_0}` or the
///   whole vertex set. At `bits = 1` the complement of `bit[0][0]`
///   ties the same value (its only in-edge is `ℓ_0`'s light edge).
///
/// There is deliberately no reverse direction on the gadget edges, so
/// the graph has no finite edgewise β certificate — the for-all
/// sparsifier bound `(1+β)` degenerates. [`bit_gadget_balanced`] is
/// the β-certified variant the balance-aware sweeps use.
#[must_use]
pub fn bit_gadget(bits: usize) -> DiGraph {
    build_bit_gadget(bits, None)
}

/// [`bit_gadget`] with every edge mirrored at `weight/β`, giving the
/// gadget an exact edgewise balance certificate of `β` while keeping
/// `{ℓ_0}` the unique global min cut. Requires `β > 8·bits` so the
/// mirrored heavy in-edges of `ℓ_0` (worth `2·heavy/β = 4·bits/β`)
/// keep its out-cut below the ≥ 1 floor of every other cut; value is
/// [`bit_gadget_balanced_min_cut`]`(bits, beta)`.
#[must_use]
pub fn bit_gadget_balanced(bits: usize, beta: f64) -> DiGraph {
    assert!(
        beta > 8.0 * bits as f64,
        "β must exceed 8·bits to keep {{ℓ_0}} the unique min cut"
    );
    build_bit_gadget(bits, Some(beta))
}

/// A preferential-attachment (scale-free) β-balanced digraph: node `t`
/// attaches to up to `out_degree` distinct earlier nodes sampled with
/// probability proportional to attachment count + 1, each attachment a
/// forward `old → new` edge of weight in `[1, 2)` with a `weight/β`
/// reverse, plus the same balanced Hamiltonian bicycle as
/// [`random_balanced_digraph`] so the result is strongly connected.
///
/// The edgewise balance certificate is at most `β` (every mirrored
/// pair has ratio exactly `β`; pairs where an attachment overlaps a
/// bicycle edge in the opposite orientation only get closer to 1).
#[must_use]
pub fn scale_free_digraph<R: Rng>(n: usize, out_degree: usize, beta: f64, rng: &mut R) -> DiGraph {
    assert!(n >= 3, "the bicycle needs ≥ 3 nodes");
    assert!(out_degree >= 1, "each new node must attach somewhere");
    assert!(beta >= 1.0, "β must be ≥ 1");
    let mut g = DiGraph::new(n);
    // attach[v] = 1 + number of attachments v has received: the
    // "rich get richer" sampling mass.
    let mut attach = vec![1.0f64; n];
    for t in 1..n {
        let mut chosen = vec![false; t];
        for _ in 0..out_degree.min(t) {
            let total: f64 = attach[..t].iter().sum();
            let mut x = rng.gen_range(0.0..total);
            let mut u = t - 1;
            for (i, &a) in attach[..t].iter().enumerate() {
                if x < a {
                    u = i;
                    break;
                }
                x -= a;
            }
            if chosen[u] {
                // A duplicate draw spends its slot: hubs saturate
                // instead of forcing ever-denser early rows.
                continue;
            }
            chosen[u] = true;
            let w = rng.gen_range(1.0..2.0);
            g.add_edge(NodeId::new(u), NodeId::new(t), w);
            g.add_edge(NodeId::new(t), NodeId::new(u), w / beta);
            attach[u] += 1.0;
        }
    }
    for i in 0..n {
        let (u, v) = (NodeId::new(i), NodeId::new((i + 1) % n));
        let w = rng.gen_range(1.0..2.0);
        g.add_edge(u, v, w);
        g.add_edge(v, u, w / beta);
    }
    g
}

/// Closed-form global directed min cut of
/// [`beta_extreme_bipartite`]`(half, beta)`: the out-cut of a single
/// right node — `half` edges of weight `1/β` — computed as the same
/// repeated f64 addition a kernel edge scan performs.
#[must_use]
pub fn beta_extreme_min_cut(half: usize, beta: f64) -> f64 {
    (0..half).fold(0.0, |acc, _| acc + 1.0 / beta)
}

/// The near-bipartite β-extreme digraph: a complete bipartite shell
/// `left → right` at weight 1 with the reverse direction at `1/β` —
/// the instance family where the directed/undirected sparsification
/// gap is widest (every backward cut is a factor β cheaper than its
/// forward twin).
///
/// Deterministic. Verified structural properties (pinned by tests):
///
/// * strongly connected for every `half ≥ 1`;
/// * the edgewise balance certificate is exactly `β` (every pair has
///   ratio `1 / (1/β)`);
/// * for `half ≥ 2` and `β > 1` the global directed min cut has value
///   [`beta_extreme_min_cut`]`(half, beta)` — the bilinear out-cut
///   form `p(h−q) + q(h−p)/β` over `(p, q)` left/right side counts is
///   minimised on the boundary at `(0, 1)` (a single right node) and
///   `(h−1, h)` (the complement of a single left node), and nowhere
///   else.
#[must_use]
pub fn beta_extreme_bipartite(half: usize, beta: f64) -> DiGraph {
    assert!(half >= 1, "each side needs at least one node");
    assert!(beta >= 1.0, "β must be ≥ 1");
    let mut g = DiGraph::new(2 * half);
    add_complete_bipartite(&mut g, 0..half, half..2 * half, 1.0, 1.0 / beta);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{edgewise_balance_bound, exact_balance_factor, is_eulerian};
    use crate::connectivity::is_strongly_connected;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn gnp_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(gnp(10, 0.0, &mut rng).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).num_edges(), 45);
    }

    #[test]
    fn connected_gnp_is_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..5 {
            assert!(connected_gnp(20, 0.05, &mut rng).is_connected());
        }
    }

    #[test]
    fn balanced_digraph_certificate_is_beta() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = random_balanced_digraph(12, 0.4, 7.0, &mut rng);
        assert!(is_strongly_connected(&g));
        let cert = edgewise_balance_bound(&g).unwrap();
        assert!((cert - 7.0).abs() < 1e-9, "certificate {cert}");
    }

    #[test]
    fn balanced_digraph_exact_factor_at_most_beta() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = random_balanced_digraph(8, 0.5, 4.0, &mut rng);
        let exact = exact_balance_factor(&g);
        assert!(exact <= 4.0 + 1e-9, "exact {exact}");
    }

    #[test]
    fn eulerian_generator_is_eulerian_and_strongly_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = random_eulerian_digraph(10, 5, &mut rng);
        assert!(is_eulerian(&g));
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn eulerian_generator_is_one_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = random_eulerian_digraph(7, 3, &mut rng);
        let exact = exact_balance_factor(&g);
        assert!(
            (exact - 1.0).abs() < 1e-9,
            "Eulerian graph has balance {exact}"
        );
    }

    #[test]
    fn complete_bipartite_shell() {
        let mut g = DiGraph::new(6);
        add_complete_bipartite(&mut g, 0..3, 3..6, 2.0, 0.5);
        assert_eq!(g.num_edges(), 18);
        assert_eq!(g.pair_weight(NodeId::new(0), NodeId::new(4)), 2.0);
        assert_eq!(g.pair_weight(NodeId::new(4), NodeId::new(0)), 0.5);
        assert_eq!(edgewise_balance_bound(&g), Some(4.0));
    }

    #[test]
    fn near_regular_degrees_are_close() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = random_near_regular(30, 6, &mut rng);
        for v in g.nodes() {
            assert!(g.degree(v) <= 6);
            assert!(g.degree(v) >= 4, "degree {} too low", g.degree(v));
        }
    }

    #[test]
    fn near_regular_odd_stub_budget_rounds_down() {
        // n·d = 27 is odd: the guarantee is an even total degree of at
        // most n·d − 1, with every degree ≤ d — no dangling stub may
        // silently vanish mid-pairing.
        for seed in 0..4 {
            let mut rng = ChaCha8Rng::seed_from_u64(100 + seed);
            let g = random_near_regular(9, 3, &mut rng);
            let total: usize = g.nodes().map(|v| g.degree(v)).sum();
            assert!(total % 2 == 0, "handshake parity violated: {total}");
            assert!(total <= 26, "total degree {total} exceeds the odd budget");
            for v in g.nodes() {
                assert!(g.degree(v) <= 3);
            }
        }
    }

    #[test]
    fn bit_gadget_min_cut_matches_closed_form() {
        use crate::mincut::global_min_cut_directed;
        for bits in 1..=3 {
            let g = bit_gadget(bits);
            assert_eq!(g.num_nodes(), bit_gadget_nodes(bits));
            assert!(is_strongly_connected(&g), "bits = {bits}");
            let cut = global_min_cut_directed(&g);
            let want = bit_gadget_min_cut(bits);
            assert!(
                (cut.value - want).abs() < 1e-9,
                "bits = {bits}: solver {} vs closed form {want}",
                cut.value
            );
            if bits >= 2 {
                // The minimiser is unique: the light fan-out side
                // {ℓ_0}. (bits = 1 ties with a bit-node complement.)
                assert_eq!(cut.side.len(), 1, "bits = {bits}: side {:?}", cut.side);
                assert!(cut.side.contains(NodeId::new(0)), "bits = {bits}");
            }
        }
    }

    #[test]
    fn bit_gadget_has_no_finite_balance_certificate() {
        assert_eq!(edgewise_balance_bound(&bit_gadget(2)), None);
    }

    #[test]
    fn bit_gadget_balanced_certificate_and_min_cut() {
        use crate::mincut::global_min_cut_directed;
        let (bits, beta) = (2, 32.0);
        let g = bit_gadget_balanced(bits, beta);
        assert!(is_strongly_connected(&g));
        let cert = edgewise_balance_bound(&g).unwrap();
        assert!((cert - beta).abs() < 1e-9, "certificate {cert}");
        let cut = global_min_cut_directed(&g);
        let want = bit_gadget_balanced_min_cut(bits, beta);
        assert!(
            (cut.value - want).abs() < 1e-9,
            "solver {} vs closed form {want}",
            cut.value
        );
        assert_eq!(cut.side.len(), 1, "side {:?}", cut.side);
        assert!(cut.side.contains(NodeId::new(0)));
    }

    #[test]
    fn scale_free_is_strongly_connected_and_beta_bounded() {
        for seed in 0..4 {
            let mut rng = ChaCha8Rng::seed_from_u64(200 + seed);
            let g = scale_free_digraph(40, 2, 4.0, &mut rng);
            assert!(is_strongly_connected(&g), "seed {seed}");
            let cert = edgewise_balance_bound(&g).expect("every edge is mirrored");
            assert!(cert <= 4.0 + 1e-9, "seed {seed}: certificate {cert}");
        }
    }

    #[test]
    fn scale_free_grows_hubs() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = scale_free_digraph(200, 2, 4.0, &mut rng);
        // Preferential attachment concentrates: some early node must
        // collect far more than the per-node attachment budget.
        let max_out = g.nodes().map(|v| g.out_degree(v)).max().unwrap();
        assert!(max_out >= 8, "max out-degree {max_out} is not hub-like");
    }

    #[test]
    fn beta_extreme_certificate_and_min_cut() {
        use crate::mincut::global_min_cut_directed;
        let (half, beta) = (7, 8.0);
        let g = beta_extreme_bipartite(half, beta);
        assert!(is_strongly_connected(&g));
        assert_eq!(edgewise_balance_bound(&g), Some(beta));
        let cut = global_min_cut_directed(&g);
        let want = beta_extreme_min_cut(half, beta);
        assert!(
            (cut.value - want).abs() < 1e-9,
            "solver {} vs closed form {want}",
            cut.value
        );
        // The minimisers are exactly the single right nodes and the
        // complements of single left nodes (all tie at half/β).
        let n = g.num_nodes();
        let singleton_right = cut.side.len() == 1 && cut.side.iter().all(|v| v.index() >= half);
        let left_complement = cut.side.len() == n - 1
            && cut.side.complement().iter().all(|v| v.index() < half);
        assert!(
            singleton_right || left_complement,
            "side {:?} is not a known minimiser",
            cut.side
        );
    }

    #[test]
    fn bipartite_sets_shell_matches_range_shell() {
        let mut a = DiGraph::new(6);
        add_complete_bipartite(&mut a, 0..3, 3..6, 2.0, 0.5);
        let mut b = DiGraph::new(6);
        add_complete_bipartite_sets(&mut b, &[0, 1, 2], &[3, 4, 5], 2.0, 0.5);
        for u in a.nodes() {
            for v in a.nodes() {
                assert_eq!(a.pair_weight(u, v), b.pair_weight(u, v));
            }
        }
    }
}
