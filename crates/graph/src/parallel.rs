//! Deterministic fan-out of independent solves over a bounded worker
//! pool.
//!
//! Every batch entry point in the engine (per-sink flows, Karger–Stein
//! trials, per-server sketching) reduces to the same shape: `tasks`
//! independent jobs whose results must come back **in task order** so
//! the output is bit-identical no matter how many worker threads ran
//! them. [`run_indexed`] and [`run_indexed_with`] implement that shape
//! with `std::thread::scope` — workers claim task indices from a shared
//! atomic counter, stash `(index, result)` pairs locally, and the
//! caller reassembles the results by index afterwards. Scheduling
//! nondeterminism therefore affects *which worker* computes a task, but
//! never the result: each task sees only its own per-task state.
//!
//! The pool size comes from [`default_threads`]: the
//! `DIRCUT_THREADS` environment variable when set, otherwise the
//! machine's available parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The worker count used by engine entry points that do not take an
/// explicit thread count: `DIRCUT_THREADS` if set to a positive
/// integer, otherwise [`std::thread::available_parallelism`].
#[must_use]
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("DIRCUT_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f(0), f(1), …, f(tasks − 1)` across up to `threads` workers
/// and returns the results in task order.
///
/// Determinism: the output depends only on `f` and `tasks` — never on
/// `threads` or scheduling — provided `f` is a pure function of its
/// index (the engine's tasks are: each solves its own cloned network or
/// its own seeded RNG).
pub fn run_indexed<T, F>(tasks: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(tasks, threads, || (), move |(), i| f(i))
}

/// Like [`run_indexed`], but each worker first builds private scratch
/// state with `init` (e.g. a cloned [`crate::flow::FlowNetwork`]) and
/// every task it claims receives `&mut` access to it. The serial path
/// (`threads ≤ 1` or `tasks ≤ 1`) builds the state once and loops —
/// zero thread overhead — and produces exactly the same output as any
/// parallel execution.
///
/// # Panics
/// Propagates panics from worker tasks.
pub fn run_indexed_with<S, T, I, F>(tasks: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if tasks == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(tasks);
    if threads <= 1 {
        let mut state = init();
        return (0..tasks).map(|i| f(&mut state, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(tasks);
    slots.resize_with(tasks, || None);
    let chunks: Vec<(Vec<(usize, T)>, crate::stats::ScopedCounts)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    // Measure the worker's whole claim loop so its
                    // stats can be credited to the spawning thread
                    // below — `stats::scoped` counts then do not
                    // depend on the thread count.
                    crate::stats::scoped(|| {
                        let mut state = init();
                        let mut local: Vec<(usize, T)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= tasks {
                                break;
                            }
                            local.push((i, f(&mut state, i)));
                        }
                        local
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("engine worker panicked"))
            .collect()
    });
    for (chunk, counts) in chunks {
        crate::stats::add_scoped_counts(counts);
        for (i, v) in chunk {
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every task index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        for threads in [1, 2, 3, 8] {
            let out = run_indexed(100, threads, |i| i * i);
            assert_eq!(
                out,
                (0..100).map(|i| i * i).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn worker_state_is_private_per_worker() {
        // Each worker's scratch accumulates only its own tasks, and the
        // per-task output never depends on the scratch history.
        let out = run_indexed_with(
            64,
            4,
            || 0usize,
            |scratch, i| {
                *scratch += 1;
                i + 1
            },
        );
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn handles_zero_and_tiny_task_counts() {
        assert!(run_indexed(0, 8, |i| i).is_empty());
        assert_eq!(run_indexed(1, 8, |i| i + 7), vec![7]);
        assert_eq!(run_indexed(2, 1, |i| i), vec![0, 1]);
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        assert_eq!(run_indexed(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
