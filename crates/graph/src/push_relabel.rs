//! Push–relabel maximum flow (highest-label selection with the gap
//! heuristic).
//!
//! A second, independently implemented max-flow algorithm. Its job in
//! this workspace is *cross-validation*: every flow-based verification
//! (Lemma 5.5, the Figure 3–6 connectivity checks, Gomory–Hu trees)
//! rests on max-flow being correct, so the test suite checks
//! Dinic and push–relabel against each other on random instances —
//! two independent implementations agreeing is a much stronger
//! correctness signal than either alone.

use crate::digraph::DiGraph;
use crate::ids::{NodeId, NodeSet};

const EPS: f64 = 1e-11;

#[derive(Debug, Clone, Copy)]
struct Arc {
    to: u32,
    cap: f64,
}

/// A push–relabel max-flow solver over `f64` capacities.
#[derive(Debug, Clone)]
pub struct PushRelabel {
    n: usize,
    arcs: Vec<Arc>,
    adj: Vec<Vec<u32>>,
}

impl PushRelabel {
    /// An empty network on `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            arcs: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Builds a network from a digraph (one arc per edge).
    #[must_use]
    pub fn from_digraph(g: &DiGraph) -> Self {
        let mut net = Self::new(g.num_nodes());
        for e in g.edges() {
            net.add_arc(e.from, e.to, e.weight);
        }
        net
    }

    /// Adds a directed arc with the given capacity.
    pub fn add_arc(&mut self, u: NodeId, v: NodeId, cap: f64) {
        assert!(
            u.index() < self.n && v.index() < self.n,
            "arc endpoint out of range"
        );
        assert!(cap >= 0.0 && cap.is_finite(), "bad capacity {cap}");
        let i = self.arcs.len() as u32;
        self.arcs.push(Arc { to: v.0, cap });
        self.arcs.push(Arc { to: u.0, cap: 0.0 });
        self.adj[u.index()].push(i);
        self.adj[v.index()].push(i + 1);
    }

    /// Computes the maximum `s → t` flow, consuming residual capacity.
    ///
    /// # Panics
    /// Panics if `s == t`.
    pub fn max_flow(&mut self, s: NodeId, t: NodeId) -> f64 {
        assert!(s != t, "max_flow requires s ≠ t");
        let (s, t) = (s.index(), t.index());
        let n = self.n;
        let mut height = vec![0usize; n];
        let mut excess = vec![0.0f64; n];
        let mut count = vec![0usize; 2 * n + 1]; // nodes per height (gap heuristic)
        height[s] = n;
        count[0] = n - 1;
        count[n] = 1;

        // Saturate source arcs.
        let src_arcs: Vec<u32> = self.adj[s].clone();
        for ai in src_arcs {
            let ai = ai as usize;
            let cap = self.arcs[ai].cap;
            if cap > EPS {
                let to = self.arcs[ai].to as usize;
                self.arcs[ai].cap = 0.0;
                self.arcs[ai ^ 1].cap += cap;
                excess[to] += cap;
                excess[s] -= cap;
            }
        }

        // Highest-label bucket queue.
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); 2 * n + 1];
        let mut highest = 0usize;
        for v in 0..n {
            if v != s && v != t && excess[v] > EPS {
                buckets[height[v]].push(v);
                highest = highest.max(height[v]);
            }
        }

        while highest < 2 * n + 1 {
            let Some(&v) = buckets[highest].last() else {
                if highest == 0 {
                    break;
                }
                highest -= 1;
                continue;
            };
            if excess[v] <= EPS || v == s || v == t || height[v] != highest {
                buckets[highest].pop();
                continue;
            }
            // Discharge v.
            let mut pushed_any = false;
            let arc_ids: Vec<u32> = self.adj[v].clone();
            for ai in arc_ids {
                if excess[v] <= EPS {
                    break;
                }
                let ai = ai as usize;
                let (to, cap) = (self.arcs[ai].to as usize, self.arcs[ai].cap);
                if cap > EPS && height[v] == height[to] + 1 {
                    let delta = excess[v].min(cap);
                    self.arcs[ai].cap -= delta;
                    self.arcs[ai ^ 1].cap += delta;
                    excess[v] -= delta;
                    excess[to] += delta;
                    pushed_any = true;
                    if to != s && to != t && excess[to] > EPS {
                        buckets[height[to]].push(to);
                    }
                }
            }
            if excess[v] > EPS && !pushed_any {
                // Relabel (with gap heuristic).
                let old = height[v];
                let mut best = usize::MAX;
                for &ai in &self.adj[v] {
                    let arc = &self.arcs[ai as usize];
                    if arc.cap > EPS {
                        best = best.min(height[arc.to as usize] + 1);
                    }
                }
                if best == usize::MAX {
                    buckets[highest].pop();
                    continue;
                }
                count[old] -= 1;
                if count[old] == 0 && old < n {
                    // Gap: lift everything above `old` past n.
                    for u in 0..n {
                        if u != s && height[u] > old && height[u] <= n {
                            count[height[u]] -= 1;
                            height[u] = n + 1;
                            count[height[u]] += 1;
                        }
                    }
                }
                height[v] = best.min(2 * n);
                count[height[v]] += 1;
                buckets[highest].pop();
                buckets[height[v]].push(v);
                highest = highest.max(height[v]);
            } else if excess[v] <= EPS {
                buckets[highest].pop();
            }
        }
        excess[t]
    }

    /// After `max_flow`, the source side of a minimum cut (residual
    /// reachability from `s`).
    #[must_use]
    pub fn min_cut_side(&self, s: NodeId) -> NodeSet {
        let mut side = NodeSet::empty(self.n);
        let mut stack = vec![s.index()];
        side.insert(s);
        while let Some(u) = stack.pop() {
            for &ai in &self.adj[u] {
                let arc = &self.arcs[ai as usize];
                let v = arc.to as usize;
                if arc.cap > EPS && !side.contains(NodeId::new(v)) {
                    side.insert(NodeId::new(v));
                    stack.push(v);
                }
            }
        }
        side
    }
}

/// Convenience: the max `s → t` flow of a digraph via push–relabel.
#[must_use]
pub fn max_flow_push_relabel(g: &DiGraph, s: NodeId, t: NodeId) -> f64 {
    PushRelabel::from_digraph(g).max_flow(s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::max_flow_digraph;
    use crate::generators::random_balanced_digraph;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn classic_textbook_instance() {
        let mut g = DiGraph::new(6);
        let e = [
            (0, 1, 16.0),
            (0, 2, 13.0),
            (1, 2, 10.0),
            (2, 1, 4.0),
            (1, 3, 12.0),
            (3, 2, 9.0),
            (2, 4, 14.0),
            (4, 3, 7.0),
            (3, 5, 20.0),
            (4, 5, 4.0),
        ];
        for (u, v, w) in e {
            g.add_edge(NodeId::new(u), NodeId::new(v), w);
        }
        let f = max_flow_push_relabel(&g, NodeId::new(0), NodeId::new(5));
        assert!((f - 23.0).abs() < 1e-9, "flow {f}");
    }

    #[test]
    fn agrees_with_dinic_on_random_graphs() {
        for seed in 0..12u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let n = rng.gen_range(4..20);
            let g = random_balanced_digraph(n, 0.5, 3.0, &mut rng);
            let (s, t) = (NodeId::new(0), NodeId::new(n - 1));
            let dinic = max_flow_digraph(&g, s, t);
            let pr = max_flow_push_relabel(&g, s, t);
            assert!(
                (dinic - pr).abs() < 1e-6 * (1.0 + dinic),
                "seed {seed}: dinic {dinic} vs push-relabel {pr}"
            );
        }
    }

    #[test]
    fn min_cut_side_certifies_the_flow() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let g = random_balanced_digraph(12, 0.5, 2.0, &mut rng);
        let (s, t) = (NodeId::new(0), NodeId::new(11));
        let mut net = PushRelabel::from_digraph(&g);
        let f = net.max_flow(s, t);
        let side = net.min_cut_side(s);
        assert!(side.contains(s) && !side.contains(t));
        assert!((g.cut_out(&side) - f).abs() < 1e-6 * (1.0 + f));
    }

    #[test]
    fn disconnected_pair_has_zero_flow() {
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId::new(0), NodeId::new(1), 5.0);
        g.add_edge(NodeId::new(2), NodeId::new(3), 5.0);
        assert_eq!(
            max_flow_push_relabel(&g, NodeId::new(0), NodeId::new(3)),
            0.0
        );
    }

    #[test]
    fn respects_arc_direction() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId::new(0), NodeId::new(1), 9.0);
        assert_eq!(
            max_flow_push_relabel(&g, NodeId::new(1), NodeId::new(0)),
            0.0
        );
    }
}
