//! Push–relabel maximum flow (highest-label selection with the gap
//! heuristic).
//!
//! A second, independently implemented max-flow algorithm. Its job in
//! this workspace is *cross-validation*: every flow-based verification
//! (Lemma 5.5, the Figure 3–6 connectivity checks, Gomory–Hu trees)
//! rests on max-flow being correct, so the test suite checks
//! Dinic and push–relabel against each other on random instances —
//! two independent implementations agreeing is a much stronger
//! correctness signal than either alone.
//!
//! Since PR 2 the solver is generic over [`Capacity`] and shares the
//! snapshot/[`PushRelabel::reset`] contract (and the
//! [`MaxFlow`] trait) with the Dinic [`crate::flow::FlowNetwork`], so
//! batch solvers can swap backends without rebuilding arcs. Adjacency
//! is the same lazily built flat CSR the Dinic network uses — no
//! per-node `Vec`s, no per-discharge clones.

use crate::digraph::DiGraph;
use crate::flow::{Capacity, FlatAdj, MaxFlow};
use crate::ids::{NodeId, NodeSet};
use std::sync::OnceLock;

#[derive(Debug, Clone, Copy)]
struct Arc<C> {
    to: u32,
    cap: C,
}

/// A push–relabel max-flow solver, generic over [`Capacity`].
///
/// Like [`crate::flow::FlowNetwork`], the as-built capacities are kept
/// as an immutable snapshot so [`PushRelabel::reset`] restores the
/// network in one `O(m)` pass, and the residual-noise threshold scales
/// with the largest arc capacity.
#[derive(Debug, Clone)]
pub struct PushRelabel<C> {
    n: usize,
    arcs: Vec<Arc<C>>,
    /// Pristine capacities of every arc slot, in arc order.
    base: Vec<C>,
    adj: OnceLock<FlatAdj>,
    /// Residual-noise threshold, tracking the largest arc capacity.
    eps: C,
    /// Whether residual capacities equal the as-built snapshot (see
    /// [`crate::flow::FlowNetwork`]; same warm-replay contract).
    pristine: bool,
    /// Solve-replay memo, cleared on every `add_arc`.
    warm: crate::cache::FlowMemo<C>,
}

impl<C: Capacity> PushRelabel<C> {
    /// An empty network on `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            arcs: Vec::new(),
            base: Vec::new(),
            adj: OnceLock::new(),
            eps: C::ZERO,
            pristine: true,
            warm: crate::cache::FlowMemo::default(),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    fn adj(&self) -> &FlatAdj {
        self.adj
            .get_or_init(|| FlatAdj::build(self.n, self.arcs.len(), |i| self.arcs[i ^ 1].to))
    }

    #[inline]
    fn adj_len(&self, u: usize) -> usize {
        self.adj().of(u).len()
    }

    #[inline]
    fn adj_at(&self, u: usize, k: usize) -> u32 {
        self.adj().of(u)[k]
    }

    /// Adds a directed arc with the given capacity.
    pub fn add_arc(&mut self, u: NodeId, v: NodeId, cap: C) {
        assert!(
            u.index() < self.n && v.index() < self.n,
            "arc endpoint out of range"
        );
        self.adj.take();
        self.warm.clear();
        self.arcs.push(Arc { to: v.0, cap });
        self.arcs.push(Arc {
            to: u.0,
            cap: C::ZERO,
        });
        self.base.push(cap);
        self.base.push(C::ZERO);
        self.eps = self.eps.max2(C::scaled_eps(cap));
    }

    /// Restores every residual capacity to its as-built value, so the
    /// network can be solved again for a different terminal pair.
    /// `O(m)` with no allocation.
    pub fn reset(&mut self) {
        for (arc, &cap) in self.arcs.iter_mut().zip(self.base.iter()) {
            arc.cap = cap;
        }
        self.pristine = true;
    }

    /// The residual-noise threshold this network classifies positive
    /// capacities with (relative to its largest arc).
    #[must_use]
    pub fn residual_eps(&self) -> C {
        self.eps
    }

    /// Computes the maximum `s → t` flow, consuming residual capacity.
    /// Call [`PushRelabel::reset`] to solve again for another pair.
    ///
    /// # Panics
    /// Panics if `s == t`.
    pub fn max_flow(&mut self, s: NodeId, t: NodeId) -> C {
        assert!(s != t, "max_flow requires s ≠ t");
        // Warm replay from the pristine snapshot: restore the residual
        // state the cold solve left behind (bit-identical, including
        // `min_cut_side`). Billed as a solve either way.
        let warm_ok = self.pristine && crate::cache::enabled();
        if warm_ok {
            if let Some(entry) = self.warm.get(s.0, t.0) {
                let value = entry.value;
                debug_assert_eq!(entry.caps.len(), self.arcs.len());
                for (arc, &cap) in self.arcs.iter_mut().zip(&entry.caps) {
                    arc.cap = cap;
                }
                self.pristine = false;
                crate::stats::count_solve();
                crate::stats::count_cache_hits(1);
                return value;
            }
        }
        let (src, dst) = (s, t);
        let (s, t) = (s.index(), t.index());
        let _ = self.adj(); // build once, outside the discharge loops
        let n = self.n;
        let eps = self.eps;
        let mut height = vec![0usize; n];
        let mut excess = vec![C::ZERO; n];
        let mut count = vec![0usize; 2 * n + 1]; // nodes per height (gap heuristic)
        height[s] = n;
        count[0] = n - 1;
        count[n] = 1;

        // Saturate source arcs. (The source's own excess is never read
        // again — every loop below skips `s` — so it is not tracked.)
        for k in 0..self.adj_len(s) {
            let ai = self.adj_at(s, k) as usize;
            let cap = self.arcs[ai].cap;
            if cap.exceeds(eps) {
                let to = self.arcs[ai].to as usize;
                self.arcs[ai].cap = C::ZERO;
                self.arcs[ai ^ 1].cap = self.arcs[ai ^ 1].cap + cap;
                excess[to] = excess[to] + cap;
            }
        }

        // Highest-label bucket queue.
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); 2 * n + 1];
        let mut highest = 0usize;
        for v in 0..n {
            if v != s && v != t && excess[v].exceeds(eps) {
                buckets[height[v]].push(v);
                highest = highest.max(height[v]);
            }
        }

        while highest < 2 * n + 1 {
            let Some(&v) = buckets[highest].last() else {
                if highest == 0 {
                    break;
                }
                highest -= 1;
                continue;
            };
            if !excess[v].exceeds(eps) || v == s || v == t || height[v] != highest {
                buckets[highest].pop();
                continue;
            }
            // Discharge v.
            let mut pushed_any = false;
            for k in 0..self.adj_len(v) {
                if !excess[v].exceeds(eps) {
                    break;
                }
                let ai = self.adj_at(v, k) as usize;
                let (to, cap) = (self.arcs[ai].to as usize, self.arcs[ai].cap);
                if cap.exceeds(eps) && height[v] == height[to] + 1 {
                    let delta = excess[v].min2(cap);
                    self.arcs[ai].cap = self.arcs[ai].cap - delta;
                    self.arcs[ai ^ 1].cap = self.arcs[ai ^ 1].cap + delta;
                    excess[v] = excess[v] - delta;
                    excess[to] = excess[to] + delta;
                    pushed_any = true;
                    if to != s && to != t && excess[to].exceeds(eps) {
                        buckets[height[to]].push(to);
                    }
                }
            }
            if excess[v].exceeds(eps) && !pushed_any {
                // Relabel (with gap heuristic).
                let old = height[v];
                let mut best = usize::MAX;
                for k in 0..self.adj_len(v) {
                    let ai = self.adj_at(v, k) as usize;
                    let arc = &self.arcs[ai];
                    if arc.cap.exceeds(eps) {
                        best = best.min(height[arc.to as usize] + 1);
                    }
                }
                if best == usize::MAX {
                    buckets[highest].pop();
                    continue;
                }
                count[old] -= 1;
                if count[old] == 0 && old < n {
                    // Gap: lift everything above `old` past n.
                    for u in 0..n {
                        if u != s && height[u] > old && height[u] <= n {
                            count[height[u]] -= 1;
                            height[u] = n + 1;
                            count[height[u]] += 1;
                        }
                    }
                }
                height[v] = best.min(2 * n);
                count[height[v]] += 1;
                buckets[highest].pop();
                buckets[height[v]].push(v);
                highest = highest.max(height[v]);
            } else if !excess[v].exceeds(eps) {
                buckets[highest].pop();
            }
        }
        crate::stats::count_solve();
        if warm_ok {
            crate::stats::count_cache_misses(1);
            self.warm.store(
                src.0,
                dst.0,
                excess[t],
                self.arcs.iter().map(|a| a.cap).collect(),
            );
        }
        self.pristine = false;
        excess[t]
    }

    /// After `max_flow`, the source side of a minimum cut (residual
    /// reachability from `s`).
    #[must_use]
    pub fn min_cut_side(&self, s: NodeId) -> NodeSet {
        let adj = self.adj();
        let mut side = NodeSet::empty(self.n);
        let mut stack = vec![s.index()];
        side.insert(s);
        while let Some(u) = stack.pop() {
            for &ai in adj.of(u) {
                let arc = &self.arcs[ai as usize];
                let v = arc.to as usize;
                if arc.cap.exceeds(self.eps) && !side.contains(NodeId::new(v)) {
                    side.insert(NodeId::new(v));
                    stack.push(v);
                }
            }
        }
        side
    }
}

impl PushRelabel<f64> {
    /// Builds a float network from a digraph (one arc per edge).
    #[must_use]
    pub fn from_digraph(g: &DiGraph) -> Self {
        let mut net = Self::new(g.num_nodes());
        for e in g.edges() {
            net.add_arc(e.from, e.to, e.weight);
        }
        net
    }
}

impl<C: Capacity> MaxFlow<C> for PushRelabel<C> {
    fn num_nodes(&self) -> usize {
        self.n
    }
    fn add_arc(&mut self, u: NodeId, v: NodeId, cap: C) {
        PushRelabel::add_arc(self, u, v, cap);
    }
    fn max_flow(&mut self, s: NodeId, t: NodeId) -> C {
        PushRelabel::max_flow(self, s, t)
    }
    fn reset(&mut self) {
        PushRelabel::reset(self);
    }
    fn min_cut_side(&self, s: NodeId) -> NodeSet {
        PushRelabel::min_cut_side(self, s)
    }
}

/// Convenience: the max `s → t` flow of a digraph via push–relabel.
#[must_use]
pub fn max_flow_push_relabel(g: &DiGraph, s: NodeId, t: NodeId) -> f64 {
    PushRelabel::from_digraph(g).max_flow(s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::max_flow_digraph;
    use crate::generators::random_balanced_digraph;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn classic_textbook_instance() {
        let mut g = DiGraph::new(6);
        let e = [
            (0, 1, 16.0),
            (0, 2, 13.0),
            (1, 2, 10.0),
            (2, 1, 4.0),
            (1, 3, 12.0),
            (3, 2, 9.0),
            (2, 4, 14.0),
            (4, 3, 7.0),
            (3, 5, 20.0),
            (4, 5, 4.0),
        ];
        for (u, v, w) in e {
            g.add_edge(NodeId::new(u), NodeId::new(v), w);
        }
        let f = max_flow_push_relabel(&g, NodeId::new(0), NodeId::new(5));
        assert!((f - 23.0).abs() < 1e-9, "flow {f}");
    }

    #[test]
    fn integer_capacities_are_exact() {
        let mut net: PushRelabel<u64> = PushRelabel::new(6);
        let a = |i: usize| NodeId::new(i);
        net.add_arc(a(0), a(1), 16);
        net.add_arc(a(0), a(2), 13);
        net.add_arc(a(1), a(2), 10);
        net.add_arc(a(2), a(1), 4);
        net.add_arc(a(1), a(3), 12);
        net.add_arc(a(3), a(2), 9);
        net.add_arc(a(2), a(4), 14);
        net.add_arc(a(4), a(3), 7);
        net.add_arc(a(3), a(5), 20);
        net.add_arc(a(4), a(5), 4);
        assert_eq!(net.max_flow(a(0), a(5)), 23);
    }

    #[test]
    fn reset_restores_the_network_for_reuse() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = random_balanced_digraph(10, 0.6, 2.0, &mut rng);
        let mut net = PushRelabel::from_digraph(&g);
        let first = net.max_flow(NodeId::new(0), NodeId::new(9));
        net.reset();
        let second = net.max_flow(NodeId::new(0), NodeId::new(9));
        assert_eq!(
            first.to_bits(),
            second.to_bits(),
            "reset must fully restore residuals"
        );
        net.reset();
        let reused = net.max_flow(NodeId::new(0), NodeId::new(5));
        let fresh = PushRelabel::from_digraph(&g).max_flow(NodeId::new(0), NodeId::new(5));
        assert_eq!(reused.to_bits(), fresh.to_bits());
    }

    #[test]
    fn warm_replay_matches_cold_solve() {
        let _guard = crate::cache::test_lock();
        crate::cache::set_enabled(true);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = random_balanced_digraph(10, 0.6, 2.0, &mut rng);
        let mut net = PushRelabel::from_digraph(&g);
        let cold = net.max_flow(NodeId::new(0), NodeId::new(9));
        let cold_side = net.min_cut_side(NodeId::new(0));
        net.reset();
        let warm = net.max_flow(NodeId::new(0), NodeId::new(9));
        assert_eq!(cold.to_bits(), warm.to_bits());
        assert_eq!(cold_side, net.min_cut_side(NodeId::new(0)));
    }

    #[test]
    fn backends_swap_behind_the_maxflow_trait() {
        // The same driver code runs against either backend; both must
        // agree on the flow value and support snapshot/reset reuse.
        fn drive<B: MaxFlow<u64>>(mut net: B) -> (u64, u64, u64) {
            let a = |i: usize| NodeId::new(i);
            net.add_arc(a(0), a(1), 3);
            net.add_arc(a(0), a(2), 2);
            net.add_arc(a(1), a(3), 2);
            net.add_arc(a(2), a(3), 3);
            net.add_arc(a(1), a(2), 1);
            let first = net.max_flow(a(0), a(3));
            net.reset();
            let again = net.max_flow(a(0), a(3));
            net.reset();
            let other = net.max_flow(a(0), a(2));
            (first, again, other)
        }
        let dinic = drive(crate::flow::FlowNetwork::<u64>::new(4));
        let pr = drive(PushRelabel::<u64>::new(4));
        assert_eq!(dinic, pr);
        assert_eq!(dinic.0, dinic.1);
    }

    #[test]
    fn agrees_with_dinic_on_random_graphs() {
        for seed in 0..12u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let n = rng.gen_range(4..20);
            let g = random_balanced_digraph(n, 0.5, 3.0, &mut rng);
            let (s, t) = (NodeId::new(0), NodeId::new(n - 1));
            let dinic = max_flow_digraph(&g, s, t);
            let pr = max_flow_push_relabel(&g, s, t);
            assert!(
                (dinic - pr).abs() < 1e-6 * (1.0 + dinic),
                "seed {seed}: dinic {dinic} vs push-relabel {pr}"
            );
        }
    }

    #[test]
    fn min_cut_side_certifies_the_flow() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let g = random_balanced_digraph(12, 0.5, 2.0, &mut rng);
        let (s, t) = (NodeId::new(0), NodeId::new(11));
        let mut net = PushRelabel::from_digraph(&g);
        let f = net.max_flow(s, t);
        let side = net.min_cut_side(s);
        assert!(side.contains(s) && !side.contains(t));
        assert!((g.cut_out(&side) - f).abs() < 1e-6 * (1.0 + f));
    }

    #[test]
    fn disconnected_pair_has_zero_flow() {
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId::new(0), NodeId::new(1), 5.0);
        g.add_edge(NodeId::new(2), NodeId::new(3), 5.0);
        assert_eq!(
            max_flow_push_relabel(&g, NodeId::new(0), NodeId::new(3)),
            0.0
        );
    }

    #[test]
    fn respects_arc_direction() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId::new(0), NodeId::new(1), 9.0);
        assert_eq!(
            max_flow_push_relabel(&g, NodeId::new(1), NodeId::new(0)),
            0.0
        );
    }
}
