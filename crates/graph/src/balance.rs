//! β-balance of directed graphs (Definition 2.1 of the paper).
//!
//! A strongly connected digraph is β-balanced when every directed cut
//! satisfies `w(S, V∖S) ≤ β · w(V∖S, S)`. Computing the exact balance
//! factor requires looking at every cut, so this module provides three
//! tools with different cost/guarantee trade-offs:
//!
//! * [`edgewise_balance_bound`] — a *certificate*: if every edge's
//!   weight is at most `β` times the weight of its reverse pair, the
//!   graph is `β`-balanced. This is exactly how the paper argues its
//!   gadgets are balanced ("every edge has a reverse edge with similar
//!   weight"), and it runs in `O(m)`.
//! * [`exact_balance_factor`] — exhaustive over all `2^{n−1}−1` cuts
//!   for small `n`.
//! * [`sampled_balance_lower_bound`] — a randomized lower bound for
//!   larger graphs.

use crate::connectivity::is_strongly_connected;
use crate::digraph::DiGraph;
use crate::ids::{NodeId, NodeSet};
use rand::Rng;

/// An `O(m)` upper-bound certificate for the balance factor: the
/// maximum over ordered node pairs of `w(u→v) / w(v→u)` (parallel edges
/// merged). Returns `None` if some edge has no reverse weight, in which
/// case no finite edgewise certificate exists.
///
/// If this returns `Some(β)`, the graph is `β`-balanced: for any cut
/// `S`, each pair's forward weight across the cut is at most `β` times
/// the same pair's backward weight, and summing over pairs gives
/// `w(S, V∖S) ≤ β·w(V∖S, S)`.
#[must_use]
pub fn edgewise_balance_bound(g: &DiGraph) -> Option<f64> {
    use std::collections::HashMap;
    let mut pair: HashMap<(u32, u32), f64> = HashMap::new();
    for e in g.edges() {
        *pair.entry((e.from.0, e.to.0)).or_insert(0.0) += e.weight;
    }
    let mut beta: f64 = 1.0;
    for (&(u, v), &w) in &pair {
        if w == 0.0 {
            continue;
        }
        let back = pair.get(&(v, u)).copied().unwrap_or(0.0);
        if back == 0.0 {
            return None;
        }
        beta = beta.max(w / back);
    }
    Some(beta)
}

/// The exact balance factor `max_S w(S,V∖S) / w(V∖S,S)` by enumerating
/// all proper cuts. Exponential: restricted to `n ≤ 24`.
///
/// Returns `f64::INFINITY` if some cut has zero reverse weight (the
/// graph is then not β-balanced for any finite β — equivalently not
/// strongly connected).
///
/// # Panics
/// Panics if `n < 2` or `n > 24`.
#[must_use]
pub fn exact_balance_factor(g: &DiGraph) -> f64 {
    let n = g.num_nodes();
    assert!(
        (2..=24).contains(&n),
        "exact balance enumeration needs 2 ≤ n ≤ 24, got {n}"
    );
    let mut beta: f64 = 1.0;
    // Fix node 0 outside S to halve the enumeration (ratio and inverse
    // ratio are both checked).
    for mask in 1u32..(1 << (n - 1)) {
        let s = NodeSet::from_indices(n, (0..n - 1).filter(|i| mask >> i & 1 == 1).map(|i| i + 1));
        let (out, into) = g.cut_both(&s);
        if out > 0.0 && into == 0.0 || into > 0.0 && out == 0.0 {
            return f64::INFINITY;
        }
        if out > 0.0 && into > 0.0 {
            beta = beta.max(out / into).max(into / out);
        }
    }
    beta
}

/// A sampled lower bound on the balance factor: the maximum directed
/// cut ratio over `trials` random subsets. Useful when `n > 24`.
#[must_use]
pub fn sampled_balance_lower_bound<R: Rng>(g: &DiGraph, trials: usize, rng: &mut R) -> f64 {
    let n = g.num_nodes();
    assert!(n >= 2, "need ≥ 2 nodes");
    let mut beta: f64 = 1.0;
    for _ in 0..trials {
        let mut s = NodeSet::empty(n);
        for i in 0..n {
            if rng.gen_bool(0.5) {
                s.insert(NodeId::new(i));
            }
        }
        if !s.is_proper_cut() {
            continue;
        }
        let (out, into) = g.cut_both(&s);
        if out > 0.0 && into > 0.0 {
            beta = beta.max(out / into).max(into / out);
        } else if out != into {
            return f64::INFINITY;
        }
    }
    beta
}

/// Whether `g` is a valid subject for Definition 2.1 at all: strongly
/// connected with positive weights.
#[must_use]
pub fn is_balance_well_defined(g: &DiGraph) -> bool {
    g.num_nodes() >= 2 && is_strongly_connected(g)
}

/// Whether the digraph is Eulerian in the weighted sense: at every
/// node, weighted in-degree equals weighted out-degree. Eulerian
/// graphs are exactly the 1-balanced graphs.
#[must_use]
pub fn is_eulerian(g: &DiGraph) -> bool {
    g.nodes().all(|v| {
        (g.weighted_in_degree(v) - g.weighted_out_degree(v)).abs()
            <= 1e-9 * (1.0 + g.weighted_in_degree(v).abs())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn beta_pair_graph(beta: f64) -> DiGraph {
        // Complete bipartite-ish: forward weight beta, backward 1.
        let mut g = DiGraph::new(4);
        for u in 0..2 {
            for v in 2..4 {
                g.add_edge(NodeId::new(u), NodeId::new(v), beta);
                g.add_edge(NodeId::new(v), NodeId::new(u), 1.0);
            }
        }
        g
    }

    #[test]
    fn edgewise_bound_on_pair_graph() {
        let g = beta_pair_graph(5.0);
        assert_eq!(edgewise_balance_bound(&g), Some(5.0));
    }

    #[test]
    fn edgewise_bound_none_without_reverse_edges() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId::new(0), NodeId::new(1), 1.0);
        assert_eq!(edgewise_balance_bound(&g), None);
    }

    #[test]
    fn exact_factor_on_pair_graph() {
        let g = beta_pair_graph(5.0);
        let exact = exact_balance_factor(&g);
        assert!((exact - 5.0).abs() < 1e-9, "exact {exact}");
    }

    #[test]
    fn exact_factor_never_exceeds_edgewise_certificate() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..10 {
            let n = 6;
            let mut g = DiGraph::new(n);
            for u in 0..n {
                for v in 0..n {
                    if u != v {
                        g.add_edge(NodeId::new(u), NodeId::new(v), rng.gen_range(0.5..4.0));
                    }
                }
            }
            let cert = edgewise_balance_bound(&g).unwrap();
            let exact = exact_balance_factor(&g);
            assert!(exact <= cert + 1e-9, "exact {exact} > certificate {cert}");
        }
    }

    #[test]
    fn sampled_bound_is_a_lower_bound_on_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = beta_pair_graph(3.0);
        let sampled = sampled_balance_lower_bound(&g, 200, &mut rng);
        let exact = exact_balance_factor(&g);
        assert!(sampled <= exact + 1e-9);
        // With this many trials on 4 nodes it should be tight.
        assert!((sampled - exact).abs() < 1e-9);
    }

    #[test]
    fn eulerian_cycle_is_one_balanced() {
        let mut g = DiGraph::new(5);
        for i in 0..5 {
            g.add_edge(NodeId::new(i), NodeId::new((i + 1) % 5), 2.5);
        }
        assert!(is_eulerian(&g));
        // Every directed cycle cut has 1 forward and 1 backward edge of
        // equal weight...
        let exact = exact_balance_factor(&g);
        assert!((exact - 1.0).abs() < 1e-9);
    }

    #[test]
    fn non_eulerian_detected() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), 2.0);
        g.add_edge(NodeId::new(1), NodeId::new(0), 1.0);
        g.add_edge(NodeId::new(1), NodeId::new(2), 1.0);
        g.add_edge(NodeId::new(2), NodeId::new(1), 1.0);
        assert!(!is_eulerian(&g));
    }

    #[test]
    fn disconnected_graph_has_infinite_exact_balance() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), 1.0);
        g.add_edge(NodeId::new(1), NodeId::new(0), 1.0);
        g.add_edge(NodeId::new(1), NodeId::new(2), 1.0);
        assert!(!is_balance_well_defined(&g));
        assert_eq!(exact_balance_factor(&g), f64::INFINITY);
    }
}
