//! Plain-text graph serialization: a line-oriented edge-list format
//! plus Graphviz DOT export for debugging the gadget constructions.
//!
//! Format (`#`-comments and blank lines ignored):
//!
//! ```text
//! n <num_nodes>
//! e <from> <to> <weight>
//! ```

use crate::digraph::DiGraph;
use crate::ids::NodeId;
use std::fmt::Write as _;

/// Errors from parsing the edge-list format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Line didn't match any directive.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// The `n` header is missing or appears after edges.
    MissingHeader,
    /// An edge references a node out of range.
    NodeOutOfRange {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadLine { line } => write!(f, "unparseable line {line}"),
            Self::MissingHeader => write!(f, "missing `n <count>` header"),
            Self::NodeOutOfRange { line } => write!(f, "node out of range on line {line}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes a digraph to the edge-list format.
#[must_use]
pub fn to_edge_list(g: &DiGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "n {}", g.num_nodes());
    for e in g.edges() {
        let _ = writeln!(out, "e {} {} {}", e.from.0, e.to.0, e.weight);
    }
    out
}

/// Parses the edge-list format.
///
/// # Errors
/// Returns a [`ParseError`] on malformed input.
pub fn from_edge_list(text: &str) -> Result<DiGraph, ParseError> {
    let mut graph: Option<DiGraph> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("n") => {
                let n: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(ParseError::BadLine { line: line_no })?;
                graph = Some(DiGraph::new(n));
            }
            Some("e") => {
                let g = graph.as_mut().ok_or(ParseError::MissingHeader)?;
                let mut next_num = || -> Result<f64, ParseError> {
                    parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or(ParseError::BadLine { line: line_no })
                };
                let from = next_num()? as usize;
                let to = next_num()? as usize;
                let w = next_num()?;
                if from >= g.num_nodes() || to >= g.num_nodes() {
                    return Err(ParseError::NodeOutOfRange { line: line_no });
                }
                g.add_edge(NodeId::new(from), NodeId::new(to), w);
            }
            _ => return Err(ParseError::BadLine { line: line_no }),
        }
    }
    graph.ok_or(ParseError::MissingHeader)
}

/// Graphviz DOT rendering (weights as labels), for eyeballing small
/// gadgets.
#[must_use]
pub fn to_dot(g: &DiGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    for v in g.nodes() {
        let _ = writeln!(out, "  {};", v.0);
    }
    for e in g.edges() {
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{:.3}\"];",
            e.from.0, e.to.0, e.weight
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DiGraph {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), 2.5);
        g.add_edge(NodeId::new(1), NodeId::new(2), 1.0);
        g.add_edge(NodeId::new(2), NodeId::new(0), 0.125);
        g
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = sample();
        let text = to_edge_list(&g);
        let back = from_edge_list(&text).unwrap();
        assert_eq!(back.num_nodes(), 3);
        assert_eq!(back.num_edges(), 3);
        assert_eq!(back.pair_weight(NodeId::new(0), NodeId::new(1)), 2.5);
        assert_eq!(back.pair_weight(NodeId::new(2), NodeId::new(0)), 0.125);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# a graph\n\nn 2\n# the only edge\ne 0 1 3.0\n";
        let g = from_edge_list(text).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn errors_are_reported_with_line_numbers() {
        assert_eq!(from_edge_list("e 0 1 1.0"), Err(ParseError::MissingHeader));
        assert_eq!(
            from_edge_list("n 2\nwhat"),
            Err(ParseError::BadLine { line: 2 })
        );
        assert_eq!(
            from_edge_list("n 2\ne 0 5 1.0"),
            Err(ParseError::NodeOutOfRange { line: 2 })
        );
        assert_eq!(from_edge_list("n x"), Err(ParseError::BadLine { line: 1 }));
    }

    #[test]
    fn dot_output_contains_every_edge() {
        let dot = to_dot(&sample(), "g");
        assert!(dot.contains("digraph g {"));
        assert!(dot.contains("0 -> 1"));
        assert!(dot.contains("2 -> 0"));
        assert!(dot.contains("label=\"2.500\""));
    }
}
