//! Connectivity: strongly connected components (Tarjan, iterative) and
//! undirected reachability.
//!
//! β-balance (Definition 2.1) is only defined for strongly connected
//! digraphs, so the balance certificates start by checking strong
//! connectivity here.

use crate::digraph::DiGraph;
use crate::ids::NodeId;

/// Strongly connected components via an iterative Tarjan traversal.
///
/// Returns a component id per node; ids are in reverse topological
/// order of the condensation (Tarjan's natural output order).
#[must_use]
pub fn strongly_connected_components(g: &DiGraph) -> Vec<usize> {
    let n = g.num_nodes();
    let csr = g.csr();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNSET; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut num_comps = 0usize;

    // Explicit DFS frame: (node, next out-edge position).
    let mut call_stack: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        call_stack.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut ei)) = call_stack.last_mut() {
            // CSR target slices walk neighbors directly — no per-edge
            // indirection through the edge list.
            let out = csr.out_targets(NodeId::new(v));
            if *ei < out.len() {
                let w = out[*ei] as usize;
                *ei += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp[w] = num_comps;
                        if w == v {
                            break;
                        }
                    }
                    num_comps += 1;
                }
            }
        }
    }
    comp
}

/// Whether the digraph is strongly connected.
#[must_use]
pub fn is_strongly_connected(g: &DiGraph) -> bool {
    if g.num_nodes() <= 1 {
        return true;
    }
    let comp = strongly_connected_components(g);
    comp.iter().all(|&c| c == comp[0])
}

/// Number of weakly connected components (edge direction ignored).
#[must_use]
pub fn num_weak_components(g: &DiGraph) -> usize {
    let n = g.num_nodes();
    let csr = g.csr();
    let mut seen = vec![false; n];
    let mut count = 0;
    let mut stack = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        count += 1;
        seen[start] = true;
        stack.push(start);
        while let Some(u) = stack.pop() {
            let u_id = NodeId::new(u);
            for &w in csr.out_targets(u_id) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w as usize);
                }
            }
            for &w in csr.in_sources(u_id) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w as usize);
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_is_one_scc() {
        let mut g = DiGraph::new(4);
        for i in 0..4 {
            g.add_edge(NodeId::new(i), NodeId::new((i + 1) % 4), 1.0);
        }
        assert!(is_strongly_connected(&g));
        let comp = strongly_connected_components(&g);
        assert!(comp.iter().all(|&c| c == comp[0]));
    }

    #[test]
    fn path_is_not_strongly_connected() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), 1.0);
        g.add_edge(NodeId::new(1), NodeId::new(2), 1.0);
        assert!(!is_strongly_connected(&g));
        let comp = strongly_connected_components(&g);
        // Three singleton components.
        assert_eq!(
            comp.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }

    #[test]
    fn two_cycles_bridged_one_way() {
        // cycle {0,1} and cycle {2,3}, plus 1→2: two SCCs.
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId::new(0), NodeId::new(1), 1.0);
        g.add_edge(NodeId::new(1), NodeId::new(0), 1.0);
        g.add_edge(NodeId::new(2), NodeId::new(3), 1.0);
        g.add_edge(NodeId::new(3), NodeId::new(2), 1.0);
        g.add_edge(NodeId::new(1), NodeId::new(2), 1.0);
        let comp = strongly_connected_components(&g);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert!(!is_strongly_connected(&g));
        assert_eq!(num_weak_components(&g), 1);
    }

    #[test]
    fn empty_and_singleton_are_strongly_connected() {
        assert!(is_strongly_connected(&DiGraph::new(0)));
        assert!(is_strongly_connected(&DiGraph::new(1)));
    }

    #[test]
    fn weak_components_count_isolated_nodes() {
        let mut g = DiGraph::new(5);
        g.add_edge(NodeId::new(0), NodeId::new(1), 1.0);
        assert_eq!(num_weak_components(&g), 4);
    }

    #[test]
    fn deep_recursion_does_not_overflow() {
        // A long directed cycle exercises the iterative DFS.
        let n = 200_000;
        let mut g = DiGraph::new(n);
        for i in 0..n {
            g.add_edge(NodeId::new(i), NodeId::new((i + 1) % n), 1.0);
        }
        assert!(is_strongly_connected(&g));
    }
}
