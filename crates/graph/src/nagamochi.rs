//! Nagamochi–Ibaraki sparse certificates.
//!
//! Decomposes the edges of an undirected graph into maximal spanning
//! forests `F₁, F₂, …`; the union of the first `k` forests is a
//! *k-certificate*: it has at most `k(n−1)` edges and preserves every
//! cut value up to `k`. Certificates let sketches and local-query
//! algorithms reason about connectivity on a graph with `O(kn)` edges
//! instead of `m`.

use crate::digraph::DiGraph;
use crate::ids::NodeId;
use crate::ungraph::UnGraph;

/// Simple union-find over `n` elements.
#[derive(Debug, Clone)]
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }
    /// Makes every element a singleton again, reusing the allocation.
    fn reset(&mut self) {
        for (i, p) in self.parent.iter_mut().enumerate() {
            *p = i as u32;
        }
    }
    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra as usize] = rb;
        true
    }
}

/// Assigns each edge (in `g.edges()` order) its forest index
/// `r(e) ∈ {1, 2, …}`: edge `e` belongs to forest `F_{r(e)}` of the
/// iterated-spanning-forest decomposition.
#[must_use]
pub fn forest_labels(g: &UnGraph) -> Vec<u32> {
    let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let mut labels = vec![0u32; edges.len()];
    let mut remaining: Vec<usize> = (0..edges.len()).collect();
    let mut dsu = Dsu::new(g.num_nodes());
    let mut round = 1u32;
    while !remaining.is_empty() {
        dsu.reset();
        // Compact the undecided edges in place: one DSU and one index
        // vector live for the whole decomposition, instead of a fresh
        // allocation per forest round.
        let mut write = 0usize;
        for read in 0..remaining.len() {
            let ei = remaining[read];
            let (u, v) = edges[ei];
            if dsu.union(u.0, v.0) {
                labels[ei] = round;
            } else {
                remaining[write] = ei;
                write += 1;
            }
        }
        debug_assert!(write < remaining.len(), "forest round made no progress");
        remaining.truncate(write);
        round += 1;
    }
    labels
}

/// The `k`-certificate: the subgraph of edges in the first `k` forests.
/// Preserves `min(cut, k)` for every cut, with at most `k(n−1)` edges.
///
/// # Panics
/// Panics if `k == 0`.
#[must_use]
pub fn sparse_certificate(g: &UnGraph, k: u32) -> UnGraph {
    assert!(k >= 1, "certificate order must be ≥ 1");
    let labels = forest_labels(g);
    let mut out = UnGraph::new(g.num_nodes());
    for ((u, v), &l) in g.edges().zip(labels.iter()) {
        if l <= k {
            out.add_edge(u, v);
        }
    }
    out
}

/// Nagamochi–Ibaraki strength labels for the edges of a *digraph*, in
/// `g.edges()` order: each directed edge gets the forest index of the
/// corresponding unordered pair in the unweighted undirected skeleton.
/// The label `k_e` lower-bounds the skeleton's local edge connectivity
/// between the endpoints, which makes it a sound (conservative)
/// sampling score in Benczúr–Karger-style sparsifiers.
///
/// Antiparallel edges map to the same unordered pair; when the skeleton
/// holds parallel copies the pair's label is the copy inserted last,
/// matching the historical `StrengthSketcher` behaviour bit for bit.
#[must_use]
pub fn skeleton_strength_labels(g: &DiGraph) -> Vec<u32> {
    let n = g.num_nodes();
    let mut skeleton = UnGraph::new(n);
    for e in g.edges() {
        skeleton.add_edge(e.from, e.to);
    }
    let labels = forest_labels(&skeleton);
    let mut label_of = std::collections::HashMap::new();
    for ((u, v), &l) in skeleton.edges().zip(labels.iter()) {
        label_of.insert((u.0.min(v.0), u.0.max(v.0)), l);
    }
    g.edges()
        .iter()
        .map(|e| {
            let key = (e.from.0.min(e.to.0), e.from.0.max(e.to.0));
            *label_of.get(&key).expect("edge missing from skeleton")
        })
        .collect()
}

/// Directed local-edge-connectivity lower bounds for a `β`-balanced
/// digraph, in `g.edges()` order.
///
/// For every cut `S` of a β-balanced graph the directed value satisfies
/// `w(S, V∖S) ≥ (w(S, V∖S) + w(V∖S, S)) / (1+β)`, so the symmetrized
/// local connectivity — itself lower-bounded by the unweighted-skeleton
/// Nagamochi–Ibaraki label of [`skeleton_strength_labels`] — yields
/// `λ(u→v) ≥ k_e / (1+β)` for unit-weight-scale graphs. Underestimating
/// strength only *raises* a strength-driven sampling rate, so the
/// estimate is always safe to sample with (cf. arXiv 2006.01975, where
/// the sampling rate for edge `e` is `ρ/λ_e` with `λ_e` the directed
/// local connectivity).
///
/// # Panics
/// Panics if `beta < 1` (balance factors are ≥ 1 by definition).
#[must_use]
pub fn directed_strength_estimates(g: &DiGraph, beta: f64) -> Vec<f64> {
    assert!(beta >= 1.0, "balance factor must be ≥ 1");
    skeleton_strength_labels(g)
        .into_iter()
        .map(|l| f64::from(l) / (1.0 + beta))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::connected_gnp;
    use crate::ids::NodeSet;
    use crate::mincut::min_cut_unweighted;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn labels_partition_edges_into_forests() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = connected_gnp(15, 0.4, &mut rng);
        let labels = forest_labels(&g);
        assert_eq!(labels.len(), g.num_edges());
        let max_label = *labels.iter().max().unwrap();
        // Each label class is a forest: |F_i| ≤ n − 1 and acyclic.
        for l in 1..=max_label {
            let count = labels.iter().filter(|&&x| x == l).count();
            assert!(count < g.num_nodes(), "forest {l} has {count} edges");
            let mut dsu = Dsu::new(g.num_nodes());
            for ((u, v), &x) in g.edges().zip(labels.iter()) {
                if x == l {
                    assert!(dsu.union(u.0, v.0), "forest {l} contains a cycle");
                }
            }
        }
    }

    #[test]
    fn certificate_has_bounded_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = connected_gnp(20, 0.6, &mut rng);
        for k in 1..5u32 {
            let cert = sparse_certificate(&g, k);
            assert!(cert.num_edges() <= k as usize * (g.num_nodes() - 1));
        }
    }

    #[test]
    fn certificate_preserves_small_cuts() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for seed in 0..4u64 {
            let mut gen = ChaCha8Rng::seed_from_u64(seed);
            let g = connected_gnp(12, 0.5, &mut gen);
            let lambda = min_cut_unweighted(&g);
            for k in 1..=(lambda + 2) as u32 {
                let cert = sparse_certificate(&g, k);
                let cert_lambda = min_cut_unweighted(&cert);
                // Two-sided: ≥ min(λ, k) (certificate guarantee) and
                // ≤ λ (subgraph).
                assert!(
                    cert_lambda >= lambda.min(k as u64) && cert_lambda <= lambda,
                    "k={k}, λ={lambda}, certλ={cert_lambda}"
                );
            }
            let _ = &mut rng;
        }
    }

    #[test]
    fn certificate_preserves_every_small_cut_value() {
        // Stronger check: min(cut(S), k) must be preserved for all S on
        // a small graph.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = connected_gnp(9, 0.5, &mut rng);
        let k = 2u32;
        let cert = sparse_certificate(&g, k);
        let n = g.num_nodes();
        for mask in 1u32..(1 << (n - 1)) {
            let s = NodeSet::from_indices(n, (0..n - 1).filter(|i| mask >> i & 1 == 1));
            let orig = g.cut_size(&s) as u64;
            let kept = cert.cut_size(&s) as u64;
            assert!(
                kept >= orig.min(k as u64),
                "mask {mask}: {kept} < min({orig},{k})"
            );
            assert!(kept <= orig);
        }
    }

    #[test]
    fn pinned_regression_n11_k4_certificate() {
        // This exact 11-node, 31-edge graph (with this exact edge
        // insertion order, which fixes the forest decomposition) was
        // once recorded by proptest as a failing case of
        // `sparse_certificate_preserves_small_cuts` with k = 4. The
        // failure did not reproduce against the current code — the
        // persisted seed predated it — so the case is pinned here as a
        // deterministic unit test instead of a strategy-coupled seed
        // file that silently goes stale.
        let edges = [
            (0, 2),
            (0, 3),
            (0, 8),
            (0, 1),
            (1, 2),
            (1, 3),
            (2, 3),
            (1, 5),
            (3, 5),
            (2, 4),
            (2, 6),
            (3, 6),
            (1, 7),
            (3, 7),
            (1, 9),
            (1, 10),
            (3, 10),
            (3, 4),
            (4, 7),
            (4, 8),
            (4, 5),
            (5, 6),
            (6, 7),
            (6, 8),
            (6, 10),
            (5, 9),
            (7, 9),
            (7, 8),
            (8, 9),
            (9, 10),
            (0, 10),
        ];
        let mut g = UnGraph::new(11);
        for (u, v) in edges {
            g.add_edge(NodeId::new(u), NodeId::new(v));
        }
        assert_eq!(g.num_edges(), 31);
        let lambda = min_cut_unweighted(&g);
        assert_eq!(lambda, 5);
        for k in 1..=7u32 {
            let cert = sparse_certificate(&g, k);
            let cert_lambda = min_cut_unweighted(&cert);
            assert!(
                cert_lambda >= lambda.min(u64::from(k)) && cert_lambda <= lambda,
                "k={k}, λ={lambda}, certλ={cert_lambda}"
            );
            assert!(cert.num_edges() <= k as usize * 10);
        }
    }

    #[test]
    fn first_forest_spans_connected_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = connected_gnp(25, 0.3, &mut rng);
        let cert = sparse_certificate(&g, 1);
        assert!(cert.is_connected());
        assert_eq!(cert.num_edges(), g.num_nodes() - 1);
    }

    #[test]
    fn skeleton_labels_match_undirected_forest_labels_on_symmetric_graphs() {
        use crate::digraph::DiGraph;
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let und = connected_gnp(12, 0.4, &mut rng);
        let mut d = DiGraph::new(12);
        for (u, v) in und.edges() {
            d.add_edge(u, v, 1.0);
        }
        let from_digraph = skeleton_strength_labels(&d);
        let direct = forest_labels(&und);
        assert_eq!(from_digraph, direct);
    }

    #[test]
    fn directed_estimates_lower_bound_directed_local_connectivity() {
        use crate::digraph::DiGraph;
        use crate::flow::max_flow_digraph;
        // Symmetric unit graphs are 1-balanced; the estimate k_e/2 must
        // sit below the true directed max-flow between the endpoints.
        for seed in 0..4u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let und = connected_gnp(9, 0.5, &mut rng);
            let mut d = DiGraph::new(9);
            for (u, v) in und.edges() {
                d.add_edge(u, v, 1.0);
                d.add_edge(v, u, 1.0);
            }
            let est = directed_strength_estimates(&d, 1.0);
            for (e, &lam_hat) in d.edges().iter().zip(est.iter()) {
                let flow = max_flow_digraph(&d, e.from, e.to);
                assert!(
                    lam_hat <= flow + 1e-9,
                    "edge {:?}→{:?}: estimate {lam_hat} exceeds flow {flow}",
                    e.from,
                    e.to
                );
            }
        }
    }

    #[test]
    fn larger_beta_shrinks_the_estimate() {
        use crate::digraph::DiGraph;
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let und = connected_gnp(8, 0.6, &mut rng);
        let mut d = DiGraph::new(8);
        for (u, v) in und.edges() {
            d.add_edge(u, v, 1.0);
        }
        let tight = directed_strength_estimates(&d, 1.0);
        let loose = directed_strength_estimates(&d, 4.0);
        for (a, b) in tight.iter().zip(loose.iter()) {
            assert!(b < a, "β=4 estimate {b} not below β=1 estimate {a}");
        }
    }
}
