//! Process-wide toggle and memo tables for the PR-5 query-result cache.
//!
//! Two memo layers live behind this module:
//!
//! * [`CutMemo`] — a table mapping a source-set bit mask to its
//!   directed cut values. It lives on the immutable per-epoch
//!   [`CsrSnapshot`](crate::snapshot::CsrSnapshot), so entries can
//!   never go stale: a graph mutation drops the whole snapshot (memo
//!   included) rather than re-keying anything.
//! * [`FlowMemo`] — a solve-replay table shared by the flow backends.
//!   Instead of warm-starting the augmenting search incrementally
//!   (which would change the order residual capacity is consumed in and
//!   therefore the bits of the f64 flow value and the min-cut side), a
//!   hit replays the *post-solve residual state* recorded the first
//!   time the same `(source, sink)` pair was solved on a pristine
//!   snapshot. The replayed state is bit-for-bit the state the cold
//!   solve would have produced, so `min_cut_side` and every downstream
//!   fold stay byte-identical.
//!
//! The **billing invariant** is enforced by the call sites, not here:
//! `stats::count_cut_queries` / `stats::count_solve` fire for every
//! *logical* query or solve before the cache is consulted, so
//! `Reduction::resources()` totals and the Budgeted `OracleSpec` are
//! unchanged whether the cache served the result or not. The cache is
//! observable only through [`crate::stats::total_cache_hits`] /
//! [`crate::stats::total_cache_misses`] and wall-clock time.
//!
//! The toggle reads `DIRCUT_CACHE` once (any value other than `0`
//! enables; unset enables) and can be overridden at runtime with
//! [`set_enabled`] — benchmark binaries need to compare cache-on and
//! cache-off timings inside one process.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = not yet read from the environment, 1 = enabled, 2 = disabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether the query-result cache and flow warm-starts are active.
///
/// Controlled by the `DIRCUT_CACHE` environment variable (`0` disables,
/// anything else — including unset — enables) or by [`set_enabled`].
#[must_use]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = std::env::var("DIRCUT_CACHE").map_or(true, |v| v != "0");
            ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Overrides the `DIRCUT_CACHE` toggle for the rest of the process (or
/// until the next call). Used by `bench_cutcache` to time cache-on and
/// cache-off runs in one process, and by tests that must not race on
/// environment variables.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Upper bound on distinct source-set masks memoized per graph. At 64
/// bytes a key (1024-node universe) this caps the table near 2 MiB.
const CUT_MEMO_CAP: usize = 1 << 15;

/// Upper bound on `(source, sink)` entries memoized per flow network.
/// Each entry stores a full residual-capacity snapshot (O(m)), so the
/// cap is deliberately small; Gomory–Hu needs at most n − 1 live pairs.
const FLOW_MEMO_CAP: usize = 1 << 10;

/// Cached directed cut values for one source-set mask. Out- and
/// in-cuts are filled independently (a `cut_out` miss must not evict a
/// previously cached `cut_in` for the same mask).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CutEntry {
    pub(crate) out: Option<f64>,
    pub(crate) into: Option<f64>,
    /// `true` iff this entry was carried across at least one mutation
    /// epoch by [`CutMemo::retain_disjoint`] rather than computed on
    /// the current snapshot. Hits on retained entries are counted via
    /// [`crate::stats::count_cache_hits_retained`] so the DIRCUT_STATS
    /// line shows what delta-epoch invalidation actually saved.
    pub(crate) retained: bool,
}

/// Memo of source-set mask → cut values for one
/// [`CsrSnapshot`](crate::snapshot::CsrSnapshot).
///
/// Lives behind a `Mutex` on the snapshot. Snapshots are immutable, so
/// the table needs no epoch keying or re-hashing: within one snapshot
/// it is valid for the snapshot's whole lifetime. Across a *vertex-
/// local* mutation (`DiGraph::add_edge`), the table migrates to the
/// next snapshot through [`CutMemo::retain_disjoint`], which drops
/// exactly the entries whose masks touch a mutated endpoint.
#[derive(Debug, Default, Clone)]
pub(crate) struct CutMemo {
    map: HashMap<Box<[u64]>, CutEntry>,
}

impl CutMemo {
    pub(crate) fn get(&self, words: &[u64]) -> Option<CutEntry> {
        self.map.get(words).copied()
    }

    /// Merges `entry` into the table under `words`, respecting the
    /// entry cap (existing keys always update; new keys are dropped
    /// once the table is full). The merge never resurrects a
    /// `retained` flag: writing fresh values into a carried slot keeps
    /// the slot marked retained only for the directions it still
    /// carries, which is approximated conservatively by leaving the
    /// flag untouched — retained entries only ever gain values that
    /// were computed on the *current* snapshot, and both kinds of hit
    /// return bit-identical numbers, so the flag is purely an
    /// observability label.
    pub(crate) fn store(&mut self, words: &[u64], entry: CutEntry) {
        if let Some(slot) = self.map.get_mut(words) {
            if entry.out.is_some() {
                slot.out = entry.out;
            }
            if entry.into.is_some() {
                slot.into = entry.into;
            }
        } else if self.map.len() < CUT_MEMO_CAP {
            self.map.insert(words.into(), entry);
        }
    }

    /// Number of live entries (observability/tests only).
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Delta-epoch migration: keeps exactly the entries whose masks are
    /// disjoint from the touched-vertex delta, and marks the survivors
    /// `retained`.
    ///
    /// `delta` is a sparse list of `(word_index, bits)` pairs over the
    /// same u64-word layout as the memo keys ([`crate::ids::NodeSet`]
    /// words). An entry survives iff none of its key words intersects
    /// the delta bits for that word index. Keys shorter than a delta
    /// word index (possible only if universes disagreed, which the
    /// call sites rule out) are treated as zero there, i.e. disjoint.
    ///
    /// **Soundness.** `cut_out(S)`/`cut_in(S)` only read edges with an
    /// endpoint inside `S`: an appended edge `(u, v)` with `u ∉ S` and
    /// `v ∉ S` is skipped by the defining fold in both directions, and
    /// appended edges land *after* every pre-existing edge, so the
    /// surviving entry's value is the same `+0.0`-seeded fold over the
    /// same addition sequence the new snapshot would produce — bit
    /// identity included, not just numeric equality.
    pub(crate) fn retain_disjoint(&mut self, delta: &[(usize, u64)]) {
        self.map.retain(|words, entry| {
            let keep = delta
                .iter()
                .all(|&(w, bits)| words.get(w).is_none_or(|&kw| kw & bits == 0));
            if keep {
                entry.retained = true;
            }
            keep
        });
    }
}

/// One memoized max-flow solve: the flow value plus the residual
/// capacities of every arc after the solve finished.
#[derive(Debug, Clone)]
pub(crate) struct FlowEntry<C> {
    pub(crate) value: C,
    pub(crate) caps: Vec<C>,
}

/// Solve-replay memo of `(source, sink)` → post-solve residual state
/// for one flow network snapshot. Only valid while the network's base
/// capacities are untouched — `add_arc`/`add_undirected` clear it.
#[derive(Debug, Clone)]
pub(crate) struct FlowMemo<C> {
    map: HashMap<(u32, u32), FlowEntry<C>>,
}

impl<C> Default for FlowMemo<C> {
    fn default() -> Self {
        Self {
            map: HashMap::new(),
        }
    }
}

impl<C: Clone> FlowMemo<C> {
    pub(crate) fn clear(&mut self) {
        self.map.clear();
    }

    /// Live `(source, sink)` entries — lets callers observe that a
    /// rebuilt or mutated network really starts cold (the memo is
    /// dropped, never migrated).
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    pub(crate) fn get(&self, s: u32, t: u32) -> Option<&FlowEntry<C>> {
        self.map.get(&(s, t))
    }

    pub(crate) fn store(&mut self, s: u32, t: u32, value: C, caps: Vec<C>) {
        if self.map.len() < FLOW_MEMO_CAP || self.map.contains_key(&(s, t)) {
            self.map.insert((s, t), FlowEntry { value, caps });
        }
    }
}

/// Serializes tests that flip [`set_enabled`] or assert on the global
/// hit/miss counters — the toggle is process-wide and the test harness
/// runs in parallel threads. Holders must leave the cache enabled
/// (the default) on exit.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_memo_round_trips_entries() {
        let mut memo = CutMemo::default();
        let key = [0b1010u64];
        memo.store(
            &key,
            CutEntry {
                out: Some(3.0),
                into: None,
                retained: false,
            },
        );
        assert_eq!(memo.get(&key).unwrap().out, Some(3.0));
        assert!(memo.get(&[0b0101u64]).is_none());
    }

    #[test]
    fn cut_memo_merges_out_and_in_independently() {
        let mut memo = CutMemo::default();
        let key = [7u64];
        memo.store(
            &key,
            CutEntry {
                out: Some(1.0),
                into: None,
                retained: false,
            },
        );
        memo.store(
            &key,
            CutEntry {
                out: None,
                into: Some(2.0),
                retained: false,
            },
        );
        let entry = memo.get(&key).unwrap();
        assert_eq!(entry.out, Some(1.0));
        assert_eq!(entry.into, Some(2.0));
    }

    #[test]
    fn retain_disjoint_drops_touched_and_marks_survivors() {
        let mut memo = CutMemo::default();
        // Key words over a 128-node universe: word 0 = nodes 0..64,
        // word 1 = nodes 64..128.
        memo.store(
            &[0b0001, 0],
            CutEntry {
                out: Some(1.0),
                into: None,
                retained: false,
            },
        );
        memo.store(
            &[0b0100, 0],
            CutEntry {
                out: Some(2.0),
                into: None,
                retained: false,
            },
        );
        memo.store(
            &[0, 0b1000],
            CutEntry {
                out: Some(3.0),
                into: None,
                retained: false,
            },
        );
        // Touch node 2 (word 0, bit 2): only the second entry dies.
        memo.retain_disjoint(&[(0, 0b0100)]);
        assert_eq!(memo.len(), 2);
        assert!(memo.get(&[0b0100, 0]).is_none());
        let a = memo.get(&[0b0001, 0]).unwrap();
        let b = memo.get(&[0, 0b1000]).unwrap();
        assert!(a.retained && b.retained);
        assert_eq!((a.out, b.out), (Some(1.0), Some(3.0)));
    }

    #[test]
    fn flow_memo_round_trips_residual_caps() {
        let mut memo = FlowMemo::default();
        memo.store(0, 3, 5.0f64, vec![1.0, 0.0, 4.0]);
        let entry = memo.get(0, 3).unwrap();
        assert_eq!(entry.value, 5.0);
        assert_eq!(entry.caps, vec![1.0, 0.0, 4.0]);
        assert!(memo.get(3, 0).is_none());
        memo.clear();
        assert!(memo.get(0, 3).is_none());
    }

    #[test]
    fn toggle_override_wins() {
        let _guard = test_lock();
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }
}
