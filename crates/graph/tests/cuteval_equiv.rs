//! The batch cut-kernel contract: for any weighted multigraph (parallel
//! edges, isolated nodes included) and any batch of query sets, the
//! `cuteval` kernels return **bit-identical** answers to the naive
//! per-set edge scans, at every worker count. The fast-path routing and
//! the word-parallel chunking must be unobservable.

use dircut_graph::cuteval::{
    cut_both_batch_edges, cut_both_batch_threaded, cut_in_batch_threaded, cut_out_batch_threaded,
    set_lanes, try_cut_both_batch, MAX_LANES,
};
use dircut_graph::{DiGraph, NodeId, NodeSet};
use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const THREAD_COUNTS: [usize; 2] = [1, 8];
const LANE_COUNTS: [usize; 3] = [1, 2, 4];

/// Serializes the tests that sweep the process-global lane toggle, so
/// one sweep's `set_lanes` cannot interleave with another's. (Races
/// against non-sweeping tests are benign — every lane count produces
/// identical bits, which is the property under test.)
static LANE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// A random weighted multigraph: up to `n` nodes (some isolated), edges
/// drawn with replacement so parallel edges and self-avoiding repeats
/// are common. Returns the graph and its raw edge list.
fn arb_multigraph() -> impl Strategy<Value = (DiGraph, Vec<(u32, u32, f64)>)> {
    (2usize..40, 0usize..160, 0u64..10_000).prop_map(|(n, m, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut g = DiGraph::with_edge_capacity(n, m);
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            // Confine endpoints to the lower half of the id space now
            // and then so high ids stay isolated.
            let cap = if rng.gen_bool(0.3) { n.div_ceil(2) } else { n };
            let u = rng.gen_range(0..cap);
            let mut v = rng.gen_range(0..cap);
            if u == v {
                v = (v + 1) % cap.max(2);
            }
            if u == v {
                continue;
            }
            let w = rng.gen_range(0.001..10.0);
            g.add_edge(NodeId::new(u), NodeId::new(v), w);
            edges.push((u as u32, v as u32, w));
            // Duplicate some edges verbatim: parallel edges must count
            // twice, in insertion order.
            if rng.gen_bool(0.2) {
                g.add_edge(NodeId::new(u), NodeId::new(v), w);
                edges.push((u as u32, v as u32, w));
            }
        }
        (g, edges)
    })
}

/// A batch of query sets over `n` nodes: empty sets, full sets,
/// singletons, and random subsets all appear.
fn query_sets(n: usize, count: usize, seed: u64) -> Vec<NodeSet> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    (0..count)
        .map(|i| match i % 4 {
            0 => NodeSet::empty(n),
            1 => NodeSet::from_indices(n, 0..n),
            2 => NodeSet::from_indices(n, [rng.gen_range(0..n)]),
            _ => NodeSet::from_indices(n, (0..n).filter(|_| rng.gen_bool(0.5))),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batch_matches_naive_scans_bitwise((g, _) in arb_multigraph(), count in 1usize..90, seed in 0u64..1_000) {
        let n = g.num_nodes();
        let sets = query_sets(n, count, seed);
        let naive: Vec<(f64, f64)> = sets.iter().map(|s| g.cut_both(s)).collect();
        for threads in THREAD_COUNTS {
            let both = cut_both_batch_threaded(&g, &sets, threads);
            let out = cut_out_batch_threaded(&g, &sets, threads);
            let into = cut_in_batch_threaded(&g, &sets, threads);
            prop_assert_eq!(both.len(), sets.len());
            for (i, s) in sets.iter().enumerate() {
                prop_assert_eq!(
                    both[i].0.to_bits(),
                    naive[i].0.to_bits(),
                    "cut_out of set {} at {} threads", i, threads
                );
                prop_assert_eq!(
                    both[i].1.to_bits(),
                    naive[i].1.to_bits(),
                    "cut_in of set {} at {} threads", i, threads
                );
                prop_assert_eq!(out[i].to_bits(), g.cut_out(s).to_bits());
                prop_assert_eq!(into[i].to_bits(), g.cut_in(s).to_bits());
            }
        }
    }

    #[test]
    fn edge_list_kernel_matches_graph_kernel((g, edges) in arb_multigraph(), count in 1usize..60, seed in 0u64..1_000) {
        let n = g.num_nodes();
        let sets = query_sets(n, count, seed);
        let reference = cut_both_batch_threaded(&g, &sets, 1);
        for threads in THREAD_COUNTS {
            let from_list = cut_both_batch_edges(n, &edges, &sets, threads);
            for (i, (a, b)) in from_list.iter().enumerate() {
                prop_assert_eq!(a.to_bits(), reference[i].0.to_bits(), "set {}", i);
                prop_assert_eq!(b.to_bits(), reference[i].1.to_bits(), "set {}", i);
            }
        }
    }

    #[test]
    fn every_lane_and_thread_count_matches_naive_and_bills_alike(
        (g, edges) in arb_multigraph(),
        count in 1usize..90,
        seed in 0u64..1_000,
    ) {
        let _guard = LANE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let n = g.num_nodes();
        let sets = query_sets(n, count, seed);
        let naive: Vec<(f64, f64)> = sets.iter().map(|s| g.cut_both(s)).collect();
        for lane_count in LANE_COUNTS {
            set_lanes(lane_count);
            for threads in THREAD_COUNTS {
                // Values: bit-identical to the naive scans at every
                // lane/thread combination, from both the snapshot
                // kernel and the raw edge-list kernel.
                let (both, billed) = dircut_graph::stats::scoped(
                    || cut_both_batch_threaded(&g, &sets, threads));
                let from_list = cut_both_batch_edges(n, &edges, &sets, threads);
                for (i, nv) in naive.iter().enumerate() {
                    prop_assert_eq!(
                        (both[i].0.to_bits(), both[i].1.to_bits()),
                        (nv.0.to_bits(), nv.1.to_bits()),
                        "graph kernel, set {} lanes {} threads {}", i, lane_count, threads
                    );
                    prop_assert_eq!(
                        (from_list[i].0.to_bits(), from_list[i].1.to_bits()),
                        (nv.0.to_bits(), nv.1.to_bits()),
                        "edge-list kernel, set {} lanes {} threads {}", i, lane_count, threads
                    );
                }
                // Billing: one logical query per set, cache or not,
                // at every lane/thread combination.
                prop_assert_eq!(
                    billed.cut_queries, sets.len() as u64,
                    "billing at lanes {} threads {}", lane_count, threads
                );
            }
        }
        set_lanes(MAX_LANES);
    }

    #[test]
    fn delta_epoch_sequence_stays_bit_identical_to_cold_recompute(
        (g0, _) in arb_multigraph(),
        count in 1usize..40,
        seed in 0u64..1_000,
        edits in 1usize..4,
    ) {
        // mutate → query → every answer bit-equal to a cold recompute
        // (a clone starts with a cold cache, so its answers carry
        // exactly the cache-off bits). Entries the delta spared serve
        // from the carried memo; dropped ones recompute — neither may
        // change a single bit.
        dircut_graph::cache::set_enabled(true);
        let mut g = g0.clone();
        let n = g.num_nodes();
        let sets = query_sets(n, count, seed);
        let _warm = cut_both_batch_threaded(&g, &sets, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xdeca_f000);
        for edit in 0..edits {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n);
            if u == v {
                v = (v + 1) % n;
            }
            g.add_edge(NodeId::new(u), NodeId::new(v), rng.gen_range(0.001..5.0));
            let warm = cut_both_batch_threaded(&g, &sets, 2);
            let cold = cut_both_batch_threaded(&g.clone(), &sets, 1);
            for i in 0..sets.len() {
                prop_assert_eq!(
                    (warm[i].0.to_bits(), warm[i].1.to_bits()),
                    (cold[i].0.to_bits(), cold[i].1.to_bits()),
                    "set {} after edit {}", i, edit
                );
            }
        }
    }

    #[test]
    fn checked_batch_rejects_universe_mismatch((g, _) in arb_multigraph()) {
        let n = g.num_nodes();
        let good = query_sets(n, 3, 1);
        prop_assert!(try_cut_both_batch(&g, &good).is_ok());
        let mut bad = good.clone();
        bad.push(NodeSet::empty(n + 1));
        prop_assert!(try_cut_both_batch(&g, &bad).is_err());
    }
}

#[test]
fn zero_cuts_carry_a_positive_zero_sign() {
    // The accumulation convention (`+0.0`-seeded folds everywhere)
    // means even an empty cut answers +0.0 from every entry point.
    let mut g = DiGraph::new(4);
    g.add_edge(NodeId::new(0), NodeId::new(1), 1.5);
    let isolated = NodeSet::from_indices(4, [3]);
    assert_eq!(g.cut_out(&isolated).to_bits(), 0.0f64.to_bits());
    let batch = cut_both_batch_threaded(&g, std::slice::from_ref(&isolated), 1);
    assert_eq!(batch[0].0.to_bits(), 0.0f64.to_bits());
    assert_eq!(batch[0].1.to_bits(), 0.0f64.to_bits());
}

#[test]
fn mixed_fast_path_and_edge_pass_chunks_agree_with_naive() {
    // A dense core plus isolated fringe, with > 64 sets so several
    // chunks and both routing paths are exercised deterministically.
    let n = 48;
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut g = DiGraph::new(n);
    for u in 0..24 {
        for v in 0..24 {
            if u != v && rng.gen_bool(0.6) {
                g.add_edge(NodeId::new(u), NodeId::new(v), rng.gen_range(0.1..4.0));
            }
        }
    }
    let sets = query_sets(n, 200, 11);
    let naive: Vec<(f64, f64)> = sets.iter().map(|s| g.cut_both(s)).collect();
    for threads in [1, 2, 8] {
        let batch = cut_both_batch_threaded(&g, &sets, threads);
        for (i, (a, b)) in batch.iter().enumerate() {
            assert_eq!(a.to_bits(), naive[i].0.to_bits(), "set {i} t={threads}");
            assert_eq!(b.to_bits(), naive[i].1.to_bits(), "set {i} t={threads}");
        }
    }
}
