//! The lock-free snapshot store under fire: many reader threads
//! querying while a writer publishes new epochs.
//!
//! The contract being pinned: a reader holding an
//! [`Arc<CsrSnapshot>`] sees exactly one coherent graph — whatever
//! epoch it loaded — and every cut value it computes is
//! **bit-identical** to a fresh, single-threaded [`DiGraph`] replayed
//! to that same epoch. Publishes must never tear a batch, stall a
//! reader, or leak one epoch's weights into another's answers. Both
//! cache modes are exercised: the per-snapshot memo must be
//! unobservable.

use dircut_graph::cache;
use dircut_graph::{DiGraph, NodeId, NodeSet, SnapshotStore};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// Serializes the tests that flip the global cache switch.
static CACHE_SWITCH: Mutex<()> = Mutex::new(());

const NODES: usize = 80;
const EPOCHS: usize = 6;
const READERS: usize = 4;

fn base_graph() -> DiGraph {
    let mut g = DiGraph::new(NODES);
    for u in 0..NODES {
        g.add_edge(
            NodeId::new(u),
            NodeId::new((u + 1) % NODES),
            1.0 + u as f64 * 0.25,
        );
        g.add_edge(
            NodeId::new((u * 7 + 3) % NODES),
            NodeId::new(u),
            0.125 + u as f64,
        );
    }
    g
}

fn query_sets() -> Vec<NodeSet> {
    (0..12)
        .map(|i| NodeSet::from_indices(NODES, (0..NODES).filter(move |v| (v * 5 + i) % 3 == 0)))
        .collect()
}

/// Replays the writer's mutation schedule on a fresh graph and
/// records, per mutation epoch, the exact bits of every query answer.
fn golden_answers(sets: &[NodeSet]) -> HashMap<u64, Vec<(u64, u64)>> {
    let mut g = base_graph();
    let mut golden = HashMap::new();
    for _ in 0..=EPOCHS {
        let answers: Vec<(u64, u64)> = sets
            .iter()
            .map(|s| {
                let (out, into) = g.try_cut_both(s).unwrap();
                (out.to_bits(), into.to_bits())
            })
            .collect();
        golden.insert(g.mutation_epoch(), answers);
        g.scale_weights(1.5);
    }
    golden
}

fn readers_vs_publisher() {
    let sets = Arc::new(query_sets());
    let golden = Arc::new(golden_answers(&sets));

    let mut g = base_graph();
    let store = Arc::new(SnapshotStore::from_graph(&g));
    let done = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(READERS + 1));

    let mut readers = Vec::new();
    for _ in 0..READERS {
        let store = Arc::clone(&store);
        let sets = Arc::clone(&sets);
        let golden = Arc::clone(&golden);
        let done = Arc::clone(&done);
        let start = Arc::clone(&start);
        readers.push(std::thread::spawn(move || -> u64 {
            let mut reader = store.reader();
            start.wait();
            let mut checked = 0u64;
            loop {
                let finished = done.load(Ordering::Acquire);
                let snap = Arc::clone(reader.load());
                let expected = &golden[&snap.epoch()];
                for (s, &(out_bits, into_bits)) in sets.iter().zip(expected) {
                    let (out, into) = snap.try_cut_both(s).unwrap();
                    assert_eq!(
                        (out.to_bits(), into.to_bits()),
                        (out_bits, into_bits),
                        "epoch {} answered with foreign bits",
                        snap.epoch()
                    );
                    checked += 1;
                }
                if finished {
                    return checked;
                }
            }
        }));
    }

    start.wait();
    for _ in 0..EPOCHS {
        g.scale_weights(1.5);
        store.publish_graph(&g);
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    done.store(true, Ordering::Release);

    let checked: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(checked > 0, "readers never ran");

    // After the last publish every fresh load sees the final epoch.
    assert_eq!(store.load().epoch(), g.mutation_epoch());
    let final_expected = &golden[&g.mutation_epoch()];
    let snap = store.load();
    for (s, &(out_bits, _)) in sets.iter().zip(final_expected) {
        assert_eq!(snap.try_cut_both(s).unwrap().0.to_bits(), out_bits);
    }
}

#[test]
fn concurrent_readers_see_coherent_epochs_with_cache_on() {
    let _guard = CACHE_SWITCH.lock().unwrap_or_else(|e| e.into_inner());
    cache::set_enabled(true);
    readers_vs_publisher();
}

#[test]
fn concurrent_readers_see_coherent_epochs_with_cache_off() {
    let _guard = CACHE_SWITCH.lock().unwrap_or_else(|e| e.into_inner());
    cache::set_enabled(false);
    let restore = scopeguard(|| cache::set_enabled(true));
    readers_vs_publisher();
    drop(restore);
}

/// Minimal drop-guard so a failing assertion cannot leave the global
/// cache switch off for other test binaries' processes (each binary
/// is its own process, but keep the switch tidy within this one).
fn scopeguard<F: FnMut()>(f: F) -> impl Drop {
    struct Guard<F: FnMut()>(F);
    impl<F: FnMut()> Drop for Guard<F> {
        fn drop(&mut self) {
            (self.0)();
        }
    }
    Guard(f)
}

#[test]
fn steady_state_reads_reuse_the_cached_arc() {
    let g = base_graph();
    let store = Arc::new(SnapshotStore::from_graph(&g));
    let mut reader = store.reader();
    let first = Arc::clone(reader.load());
    // No publish in between: the reader must hand back the same
    // snapshot without touching the store's slot lock.
    assert!(Arc::ptr_eq(&first, reader.load()));
    let mut g2 = base_graph();
    g2.scale_weights(2.0);
    store.publish_graph(&g2);
    assert!(!Arc::ptr_eq(&first, reader.load()));
    assert_eq!(reader.load().epoch(), g2.mutation_epoch());
}
