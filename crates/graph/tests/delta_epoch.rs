//! Delta-epoch memo invalidation: a vertex-local mutation
//! (`add_edge`) migrates the cut memo to the next snapshot, keeping
//! exactly the entries whose masks avoid the touched vertices. These
//! tests pin the acceptance contract: retained entries answer with
//! the *same bits* a cold (cache-off) recompute would produce, the
//! delta-retained hit counter actually moves, and whole-graph
//! mutations (`scale_weights`) still drop everything.
//!
//! std-only on purpose (no proptest/rand): the companion proptest
//! lives in `cuteval_equiv.rs`; this file must run in environments
//! without the external dev-dependencies.

use dircut_graph::cuteval::cut_both_batch_threaded;
use dircut_graph::{cache, stats, DiGraph, NodeId, NodeSet};
use std::sync::Mutex;

/// Serializes this binary's tests: they flip the process-global cache
/// toggle and assert on the global hit counters.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Deterministic splitmix64, as used by the in-crate kernel tests.
struct Mix(u64);
impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn assert_bits_eq(a: &[(f64, f64)], b: &[(f64, f64)], what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            (x.0.to_bits(), x.1.to_bits()),
            (y.0.to_bits(), y.1.to_bits()),
            "{what}: set {i}"
        );
    }
}

/// Cache-off reference answers; restores the cache-on state it found.
fn cache_off_reference(g: &DiGraph, sets: &[NodeSet]) -> Vec<(f64, f64)> {
    cache::set_enabled(false);
    let cold = cut_both_batch_threaded(g, sets, 1);
    cache::set_enabled(true);
    cold
}

/// The headline acceptance test: a 1-edge mutation on a 10⁶-node
/// graph retains every memo entry whose mask avoids the touched
/// vertices — the re-query is served as delta-retained hits, and the
/// answers carry exactly the cache-off bits.
#[test]
fn one_edge_mutation_on_a_million_node_graph_retains_disjoint_entries() {
    let _guard = lock();
    cache::set_enabled(true);
    let n = 1_000_000usize;
    let m = 2_000_000usize;
    // Edges live strictly above node 1, so the mutated edge 0 → 1
    // touches no queried mask.
    let mut rng = Mix(0x5eed);
    let mut g = DiGraph::with_edge_capacity(n, m);
    for _ in 0..m {
        let u = 2 + rng.below((n - 2) as u64) as usize;
        let mut v = 2 + rng.below((n - 2) as u64) as usize;
        if u == v {
            v = if v + 1 < n { v + 1 } else { 2 };
        }
        g.add_edge(
            NodeId::new(u),
            NodeId::new(v),
            (rng.below(1000) as f64) / 7.0,
        );
    }
    // A handful of large query sets over nodes ≥ 2 (dense enough to
    // take the edge-pass kernel, never touching the mutated pair).
    let sets: Vec<NodeSet> = (0..6)
        .map(|k| {
            let mut rng = Mix(0xbead ^ k);
            NodeSet::from_indices(n, (2..n).filter(|_| rng.next() & 1 == 0))
        })
        .collect();
    let warm0 = cut_both_batch_threaded(&g, &sets, 2);

    g.add_edge(NodeId::new(0), NodeId::new(1), 3.25);

    let retained_before = stats::total_cache_hits_retained();
    let warm1 = cut_both_batch_threaded(&g, &sets, 2);
    assert_eq!(
        stats::total_cache_hits_retained(),
        retained_before + sets.len() as u64,
        "every disjoint-mask entry must survive the 1-edge delta"
    );
    // The new edge crosses none of the sets, and retained entries are
    // the old folds verbatim: answers are bit-identical to both the
    // pre-mutation warm pass and a cache-off recompute.
    assert_bits_eq(&warm1, &warm0, "warm vs pre-mutation");
    let cold = cache_off_reference(&g, &sets);
    assert_bits_eq(&warm1, &cold, "warm vs cache-off");
}

#[test]
fn touched_entries_recompute_while_disjoint_ones_are_served_retained() {
    let _guard = lock();
    cache::set_enabled(true);
    let n = 100usize;
    let mut rng = Mix(42);
    let mut g = DiGraph::with_edge_capacity(n, 600);
    for _ in 0..600 {
        let u = rng.below(n as u64) as usize;
        let mut v = rng.below(n as u64) as usize;
        if u == v {
            v = (v + 1) % n;
        }
        g.add_edge(
            NodeId::new(u),
            NodeId::new(v),
            (rng.below(100) as f64) / 3.0,
        );
    }
    // Set A straddles the mutation endpoints; set B avoids them.
    let a = NodeSet::from_indices(n, 0..20);
    let b = NodeSet::from_indices(n, 50..70);
    let sets = vec![a, b];
    let _ = cut_both_batch_threaded(&g, &sets, 1);

    // Mutation touches vertices 0 and 5 — both inside A, neither in B.
    g.add_edge(NodeId::new(0), NodeId::new(5), 2.5);

    let retained_before = stats::total_cache_hits_retained();
    let warm = cut_both_batch_threaded(&g, &sets, 1);
    // Exactly B survived as a delta-retained entry; A was dropped and
    // recomputed on the new snapshot.
    assert_eq!(stats::total_cache_hits_retained(), retained_before + 1);
    let cold = cache_off_reference(&g, &sets);
    assert_bits_eq(&warm, &cold, "after touched mutation");

    // A second query serves both sets from the memo: B still counts
    // as retained, A as a fresh hit.
    let retained_mid = stats::total_cache_hits_retained();
    let fresh_mid = stats::total_cache_hits_fresh();
    let again = cut_both_batch_threaded(&g, &sets, 1);
    assert_eq!(stats::total_cache_hits_retained(), retained_mid + 1);
    assert_eq!(stats::total_cache_hits_fresh(), fresh_mid + 1);
    assert_bits_eq(&again, &cold, "second warm query");
}

#[test]
fn consecutive_mutations_accumulate_into_one_delta() {
    let _guard = lock();
    cache::set_enabled(true);
    let n = 64usize;
    let mut g = DiGraph::new(n);
    for v in 1..n {
        g.add_edge(NodeId::new(v - 1), NodeId::new(v), v as f64);
    }
    let far = NodeSet::from_indices(n, 40..50);
    let near = NodeSet::from_indices(n, 10..20);
    let sets = vec![far, near];
    let _ = cut_both_batch_threaded(&g, &sets, 1);
    // Two mutations before the next query: their touched sets union.
    g.add_edge(NodeId::new(0), NodeId::new(2), 1.0);
    g.add_edge(NodeId::new(12), NodeId::new(30), 1.0); // touches `near`
    let retained_before = stats::total_cache_hits_retained();
    let warm = cut_both_batch_threaded(&g, &sets, 1);
    // Only `far` (disjoint from {0,2,12,30}) survived both deltas.
    assert_eq!(stats::total_cache_hits_retained(), retained_before + 1);
    let cold = cache_off_reference(&g, &sets);
    assert_bits_eq(&warm, &cold, "after accumulated deltas");
}

#[test]
fn scale_weights_still_invalidates_everything() {
    let _guard = lock();
    cache::set_enabled(true);
    let n = 32usize;
    let mut g = DiGraph::new(n);
    for v in 1..n {
        g.add_edge(NodeId::new(v - 1), NodeId::new(v), v as f64);
    }
    let sets = vec![
        NodeSet::from_indices(n, 0..8),
        NodeSet::from_indices(n, 20..30),
    ];
    let _ = cut_both_batch_threaded(&g, &sets, 1);
    g.scale_weights(2.0);
    // A whole-graph mutation invalidates every entry: no retained (or
    // fresh) hit may serve stale pre-scaling values.
    let retained_before = stats::total_cache_hits_retained();
    let warm = cut_both_batch_threaded(&g, &sets, 1);
    assert_eq!(stats::total_cache_hits_retained(), retained_before);
    let cold = cache_off_reference(&g, &sets);
    assert_bits_eq(&warm, &cold, "after scale_weights");
}

#[test]
fn delta_migration_is_inert_with_the_cache_disabled() {
    let _guard = lock();
    cache::set_enabled(false);
    let n = 16usize;
    let mut g = DiGraph::new(n);
    for v in 1..n {
        g.add_edge(NodeId::new(v - 1), NodeId::new(v), v as f64);
    }
    let sets = vec![NodeSet::from_indices(n, 8..12)];
    let before = cut_both_batch_threaded(&g, &sets, 1);
    g.add_edge(NodeId::new(0), NodeId::new(2), 9.0);
    let hits_before = stats::total_cache_hits();
    let after = cut_both_batch_threaded(&g, &sets, 1);
    assert_eq!(stats::total_cache_hits(), hits_before);
    // The mutated edge does not cross the set; values unchanged.
    assert_bits_eq(&after, &before, "cache-off sequence");
    cache::set_enabled(true);
}
