//! Property-based tests for the graph substrate: cut identities,
//! flow/min-cut duality, balance certificates, sparse certificates.

use dircut_graph::balance::{
    edgewise_balance_bound, exact_balance_factor, is_eulerian, sampled_balance_lower_bound,
};
use dircut_graph::flow::{edge_disjoint_paths, max_flow_digraph, network_from_digraph};
use dircut_graph::generators::random_eulerian_digraph;
use dircut_graph::karger::karger_stein_once;
use dircut_graph::mincut::{min_cut_unweighted, stoer_wagner};
use dircut_graph::nagamochi::sparse_certificate;
use dircut_graph::{DiGraph, NodeId, NodeSet, UnGraph};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A random connected digraph strategy: node count, edge density seed.
fn arb_digraph() -> impl Strategy<Value = DiGraph> {
    (3usize..12, 0u64..10_000).prop_map(|(n, seed)| {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut g = DiGraph::new(n);
        for u in 0..n {
            for v in 0..n {
                if u != v && rng.gen_bool(0.4) {
                    g.add_edge(NodeId::new(u), NodeId::new(v), rng.gen_range(0.1..5.0));
                }
            }
            // strongly connect with a cycle
            g.add_edge(
                NodeId::new(u),
                NodeId::new((u + 1) % n),
                rng.gen_range(0.1..2.0),
            );
        }
        g
    })
}

fn arb_ungraph() -> impl Strategy<Value = UnGraph> {
    (4usize..14, 0u64..10_000).prop_map(|(n, seed)| {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut g = UnGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.45) {
                    g.add_edge(NodeId::new(u), NodeId::new(v));
                }
            }
            g.add_edge(NodeId::new(u), NodeId::new((u + 1) % n));
        }
        g
    })
}

fn subset_of(n: usize, mask: u64) -> NodeSet {
    NodeSet::from_indices(n, (0..n).filter(|i| mask >> (i % 60) & 1 == 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cut_out_equals_complement_cut_in(g in arb_digraph(), mask in 1u64..u64::MAX) {
        let n = g.num_nodes();
        let s = subset_of(n, mask);
        let c = s.complement();
        prop_assert!((g.cut_out(&s) - g.cut_in(&c)).abs() < 1e-9);
        prop_assert!((g.cut_in(&s) - g.cut_out(&c)).abs() < 1e-9);
    }

    #[test]
    fn cut_both_consistent_with_individual_scans(g in arb_digraph(), mask in 1u64..u64::MAX) {
        let s = subset_of(g.num_nodes(), mask);
        let (out, into) = g.cut_both(&s);
        prop_assert!((out - g.cut_out(&s)).abs() < 1e-9);
        prop_assert!((into - g.cut_in(&s)).abs() < 1e-9);
    }

    #[test]
    fn degree_sums_match_total_weight(g in arb_digraph()) {
        let out: f64 = g.nodes().map(|v| g.weighted_out_degree(v)).sum();
        let into: f64 = g.nodes().map(|v| g.weighted_in_degree(v)).sum();
        prop_assert!((out - g.total_weight()).abs() < 1e-6);
        prop_assert!((into - g.total_weight()).abs() < 1e-6);
    }

    #[test]
    fn max_flow_equals_min_cut(g in arb_digraph()) {
        // Strong duality: the flow value equals the value of the cut
        // certified by the residual reachability, measured on the
        // ORIGINAL graph.
        let n = g.num_nodes();
        let (s, t) = (NodeId::new(0), NodeId::new(n - 1));
        let mut net = network_from_digraph(&g);
        let flow = net.max_flow(s, t);
        let side = net.min_cut_side(s);
        prop_assert!(side.contains(s) && !side.contains(t));
        prop_assert!((g.cut_out(&side) - flow).abs() < 1e-6 * (1.0 + flow));
        // And no cut separating s from t is smaller.
        prop_assert!(flow <= g.cut_out(&NodeSet::from_indices(n, [0])) + 1e-9);
    }

    #[test]
    fn flow_is_monotone_under_weight_increase(g in arb_digraph()) {
        let n = g.num_nodes();
        let (s, t) = (NodeId::new(0), NodeId::new(n - 1));
        let base = max_flow_digraph(&g, s, t);
        let mut bigger = g.clone();
        bigger.scale_weights(2.0);
        let doubled = max_flow_digraph(&bigger, s, t);
        prop_assert!((doubled - 2.0 * base).abs() < 1e-6 * (1.0 + base));
    }

    #[test]
    fn stoer_wagner_is_a_lower_bound_on_every_cut(g in arb_digraph(), mask in 1u64..u64::MAX) {
        let n = g.num_nodes();
        let s = subset_of(n, mask);
        prop_assume!(s.is_proper_cut());
        let sw = stoer_wagner(&g);
        let (out, into) = g.cut_both(&s);
        prop_assert!(sw.value <= out + into + 1e-9);
    }

    #[test]
    fn stoer_wagner_matches_flow_connectivity_on_unweighted(g in arb_ungraph()) {
        let lambda = min_cut_unweighted(&g);
        let mut d = DiGraph::new(g.num_nodes());
        for (u, v) in g.edges() {
            d.add_edge(u, v, 1.0);
        }
        let sw = stoer_wagner(&d);
        prop_assert!((sw.value - lambda as f64).abs() < 1e-9, "SW {} vs λ {}", sw.value, lambda);
    }

    #[test]
    fn karger_stein_never_beats_stoer_wagner(g in arb_digraph(), seed in 0u64..100) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sw = stoer_wagner(&g).value;
        let (ks, side) = karger_stein_once(&g, &mut rng);
        prop_assert!(ks >= sw - 1e-9);
        // Whatever it reports is a genuine cut with that value.
        let (out, into) = g.cut_both(&side);
        prop_assert!((out + into - ks).abs() < 1e-6 * (1.0 + ks));
    }

    #[test]
    fn edgewise_certificate_dominates_exact_balance(g in arb_digraph()) {
        if let Some(cert) = edgewise_balance_bound(&g) {
            let exact = exact_balance_factor(&g);
            prop_assert!(exact <= cert + 1e-9, "exact {exact} > cert {cert}");
        }
    }

    /// The sampled balance estimate maximises the directed cut ratio
    /// over a *subset* of the sides the exact enumeration sweeps, so
    /// it can never exceed the exact balance factor. This is the
    /// soundness contract the cut-balance sparsifier's ρ oversampling
    /// rate leans on.
    #[test]
    fn sampled_balance_never_exceeds_exact(
        g in arb_digraph(),
        trials in 1usize..64,
        seed in 0u64..10_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sampled = sampled_balance_lower_bound(&g, trials, &mut rng);
        let exact = exact_balance_factor(&g);
        // Both sides may be INFINITY on non-strongly-connected draws;
        // `<=` handles that ordering correctly.
        prop_assert!(
            sampled <= exact + 1e-9,
            "sampled {sampled} > exact {exact}"
        );
    }

    /// Eulerian graphs are exactly the 1-balanced graphs, and every
    /// sampled side of an Eulerian graph has cut ratio exactly 1, so
    /// the estimator and the exact sweep must both answer 1.
    #[test]
    fn balance_estimates_agree_on_eulerian_graphs(
        n in 4usize..10,
        cycles in 2usize..6,
        seed in 0u64..10_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = random_eulerian_digraph(n, cycles, &mut rng);
        prop_assume!(is_eulerian(&g));
        let exact = exact_balance_factor(&g);
        let sampled = sampled_balance_lower_bound(&g, 16, &mut rng);
        prop_assert!((exact - 1.0).abs() < 1e-9, "Eulerian exact β = {exact}");
        prop_assert!((sampled - 1.0).abs() < 1e-9, "Eulerian sampled β = {sampled}");
    }

    #[test]
    fn sparse_certificate_preserves_small_cuts(g in arb_ungraph(), k in 1u32..5) {
        let cert = sparse_certificate(&g, k);
        prop_assert!(cert.num_edges() <= k as usize * (g.num_nodes().saturating_sub(1)));
        let lambda = min_cut_unweighted(&g);
        let cert_lambda = min_cut_unweighted(&cert);
        // The certificate preserves min(cut, k) from below and is a
        // subgraph from above (its min-cut may exceed k when several
        // forests cross the same cut).
        prop_assert!(cert_lambda >= lambda.min(u64::from(k)));
        prop_assert!(cert_lambda <= lambda);
    }

    #[test]
    fn edge_disjoint_paths_bounded_by_min_degree(g in arb_ungraph()) {
        let (u, v) = (NodeId::new(0), NodeId::new(g.num_nodes() - 1));
        let flow = edge_disjoint_paths(&g, u, v);
        prop_assert!(flow <= g.degree(u).min(g.degree(v)) as u64);
    }

    #[test]
    fn reversal_is_an_involution(g in arb_digraph()) {
        let rr = g.reversed().reversed();
        prop_assert_eq!(rr.num_edges(), g.num_edges());
        prop_assert!((rr.total_weight() - g.total_weight()).abs() < 1e-9);
        let s = NodeSet::from_indices(g.num_nodes(), [0]);
        prop_assert!((rr.cut_out(&s) - g.cut_out(&s)).abs() < 1e-9);
    }

    #[test]
    fn coalescing_preserves_cuts(g in arb_digraph(), mask in 1u64..u64::MAX) {
        let c = g.coalesced();
        let s = subset_of(g.num_nodes(), mask);
        prop_assert!((c.cut_out(&s) - g.cut_out(&s)).abs() < 1e-6);
        prop_assert!((c.cut_in(&s) - g.cut_in(&s)).abs() < 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn nodeset_complement_is_involution(n in 1usize..150, mask in proptest::collection::vec(any::<bool>(), 1..150)) {
        let s = NodeSet::from_indices(n, mask.iter().enumerate().filter(|(i, &b)| b && *i < n).map(|(i, _)| i));
        prop_assert_eq!(s.complement().complement(), s.clone());
        prop_assert_eq!(s.len() + s.complement().len(), n);
    }

    #[test]
    fn nodeset_canonical_is_stable(n in 2usize..100, mask in any::<u64>()) {
        let s = subset_of(n, mask);
        let canon = s.canonical_cut_side();
        prop_assert_eq!(canon.canonical_cut_side(), canon.clone());
        prop_assert_eq!(s.complement().canonical_cut_side(), canon);
    }
}

mod structure_props {
    use super::*;
    use dircut_graph::gomory_hu::GomoryHuTree;
    use dircut_graph::io::{from_edge_list, to_edge_list};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn gomory_hu_lightest_edge_is_global_min_cut(g in arb_digraph()) {
            let tree = GomoryHuTree::build(&g);
            let sw = stoer_wagner(&g).value;
            prop_assert!((tree.global_min_cut() - sw).abs() < 1e-6 * (1.0 + sw));
        }

        #[test]
        fn gomory_hu_answers_match_direct_flows(g in arb_digraph(), u in 0usize..12, v in 0usize..12) {
            let n = g.num_nodes();
            let (u, v) = (u % n, v % n);
            prop_assume!(u != v);
            let tree = GomoryHuTree::build(&g);
            let mut net: dircut_graph::flow::FlowNetwork<f64> =
                dircut_graph::flow::FlowNetwork::new(n);
            for e in g.edges() {
                net.add_undirected(e.from, e.to, e.weight);
            }
            let direct = net.max_flow(NodeId::new(u), NodeId::new(v));
            let from_tree = tree.min_cut(NodeId::new(u), NodeId::new(v));
            prop_assert!((direct - from_tree).abs() < 1e-6 * (1.0 + direct));
        }

        #[test]
        fn edge_list_io_roundtrips(g in arb_digraph(), mask in any::<u64>()) {
            let text = to_edge_list(&g);
            let back = from_edge_list(&text).unwrap();
            prop_assert_eq!(back.num_nodes(), g.num_nodes());
            prop_assert_eq!(back.num_edges(), g.num_edges());
            let s = subset_of(g.num_nodes(), mask);
            prop_assert!((back.cut_out(&s) - g.cut_out(&s)).abs() < 1e-9);
        }
    }
}

mod cache_props {
    use super::*;
    use dircut_graph::cache;
    use dircut_graph::cuteval::cut_both_batch_threaded;
    use dircut_graph::flow::symmetric_network_from_digraph;
    use dircut_graph::gomory_hu::GomoryHuTree;
    use dircut_graph::stats;

    // These properties are deliberately race-tolerant: the cache toggle
    // is process-global and sibling tests run concurrently, but the
    // contract under test is exactly that the toggle never changes
    // result bits or billed counts — so a mid-run flip by a sibling
    // cannot produce a spurious failure, only exercise the contract
    // harder. Counter (hit/miss) assertions live in the serialised
    // unit tests instead.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Batch cut evaluation: cached and uncached runs, at 1 and 8
        /// threads, repeated so the second pass replays the memo, all
        /// produce the same bits and bill the same cut-query count.
        #[test]
        fn cached_and_uncached_batches_bit_identical_and_billed_alike(
            g in arb_digraph(),
            masks in proptest::collection::vec(1u64..u64::MAX, 1..12)
        ) {
            let n = g.num_nodes();
            let sets: Vec<NodeSet> = masks.iter().map(|&m| subset_of(n, m)).collect();
            cache::set_enabled(false);
            let (cold, cold_counts) =
                stats::scoped(|| cut_both_batch_threaded(&g, &sets, 1));
            cache::set_enabled(true);
            for threads in [1usize, 8] {
                for _pass in 0..2 {
                    let (vals, counts) =
                        stats::scoped(|| cut_both_batch_threaded(&g, &sets, threads));
                    prop_assert_eq!(counts.cut_queries, cold_counts.cut_queries);
                    for (a, b) in vals.iter().zip(&cold) {
                        prop_assert_eq!(a.0.to_bits(), b.0.to_bits());
                        prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
                    }
                }
            }
        }

        /// Gomory–Hu on one shared network: the cold build, two warm
        /// serial rebuilds (full replay), and a warm 8-thread rebuild
        /// all produce bit-identical trees; serial rebuilds bill the
        /// same solve count whether the solves were replayed or not.
        #[test]
        fn warm_and_cold_gomory_hu_builds_are_bit_identical(g in arb_digraph()) {
            let tree_bits = |t: &GomoryHuTree| -> Vec<(usize, usize, u64)> {
                t.edges().map(|(u, v, w)| (u.index(), v.index(), w.to_bits())).collect()
            };
            cache::set_enabled(false);
            let mut cold_net = symmetric_network_from_digraph(&g);
            let (cold, cold_counts) =
                stats::scoped(|| GomoryHuTree::build_with_network(&g, &mut cold_net, 1));
            cache::set_enabled(true);
            let mut warm_net = symmetric_network_from_digraph(&g);
            for _pass in 0..2 {
                let (tree, counts) =
                    stats::scoped(|| GomoryHuTree::build_with_network(&g, &mut warm_net, 1));
                prop_assert_eq!(counts.solves, cold_counts.solves);
                prop_assert_eq!(tree_bits(&tree), tree_bits(&cold));
            }
            // The speculative path may re-solve mispredicted parents, so
            // only the tree bits are compared at 8 threads.
            let threaded = GomoryHuTree::build_with_network(&g, &mut warm_net, 8);
            prop_assert_eq!(tree_bits(&threaded), tree_bits(&cold));
        }
    }
}

mod flow_cross_validation {
    use super::*;
    use dircut_graph::push_relabel::max_flow_push_relabel;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn dinic_and_push_relabel_agree(g in arb_digraph(), src in 0usize..12, dst in 0usize..12) {
            let n = g.num_nodes();
            let (s, t) = (src % n, dst % n);
            prop_assume!(s != t);
            let a = max_flow_digraph(&g, NodeId::new(s), NodeId::new(t));
            let b = max_flow_push_relabel(&g, NodeId::new(s), NodeId::new(t));
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a), "dinic {} vs pr {}", a, b);
        }
    }
}

mod adversarial_families {
    use super::*;
    use dircut_graph::connectivity::is_strongly_connected;
    use dircut_graph::generators::{
        beta_extreme_bipartite, beta_extreme_min_cut, bit_gadget, bit_gadget_min_cut,
        scale_free_digraph,
    };
    use dircut_graph::mincut::global_min_cut_directed;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The gadget's global directed min cut equals the closed form
        /// at every word width, and for `bits ≥ 2` the minimiser is
        /// the light fan-out side `{ℓ_0}`.
        #[test]
        fn bit_gadget_min_cut_is_the_closed_form(bits in 1usize..4) {
            let g = bit_gadget(bits);
            prop_assert!(is_strongly_connected(&g));
            let cut = global_min_cut_directed(&g);
            let want = bit_gadget_min_cut(bits);
            prop_assert!((cut.value - want).abs() < 1e-9, "solver {} vs {}", cut.value, want);
            if bits >= 2 {
                prop_assert_eq!(cut.side.len(), 1);
                prop_assert!(cut.side.contains(NodeId::new(0)));
            }
        }

        /// The β-extreme certificate is exactly the constructed β
        /// (power-of-two βs make the f64 round trip exact), and the
        /// min cut matches the bilinear closed form.
        #[test]
        fn beta_extreme_certificate_is_exact(half in 2usize..8, beta_pow in 1u32..6) {
            let beta = f64::from(1u32 << beta_pow);
            let g = beta_extreme_bipartite(half, beta);
            prop_assert!(is_strongly_connected(&g));
            prop_assert_eq!(edgewise_balance_bound(&g), Some(beta));
            let cut = global_min_cut_directed(&g);
            let want = beta_extreme_min_cut(half, beta);
            prop_assert!((cut.value - want).abs() < 1e-9, "solver {} vs {}", cut.value, want);
        }

        /// Preferential attachment stays strongly connected and inside
        /// its β certificate across seeds and shapes.
        #[test]
        fn scale_free_is_strongly_connected(
            n in 3usize..40,
            out_degree in 1usize..4,
            seed in 0u64..10_000,
        ) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = scale_free_digraph(n, out_degree, 4.0, &mut rng);
            prop_assert!(is_strongly_connected(&g));
            let cert = edgewise_balance_bound(&g).expect("every edge is mirrored");
            prop_assert!(cert <= 4.0 + 1e-9, "certificate {}", cert);
        }

        /// The odd-stub rounding guarantee of `random_near_regular`:
        /// even total degree, per-node cap, budget respected.
        #[test]
        fn near_regular_respects_the_rounded_stub_budget(
            n in 2usize..16,
            d in 1usize..6,
            seed in 0u64..10_000,
        ) {
            prop_assume!(d < n);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = dircut_graph::generators::random_near_regular(n, d, &mut rng);
            let total: usize = g.nodes().map(|v| g.degree(v)).sum();
            prop_assert_eq!(total % 2, 0);
            prop_assert!(total <= n * d - (n * d) % 2);
            for v in g.nodes() {
                prop_assert!(g.degree(v) <= d);
            }
        }
    }
}
