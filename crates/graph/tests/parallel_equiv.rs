//! The parallel engine's contract: for a fixed seed, every entry point
//! returns **bit-identical** results for every worker count. These
//! tests pin that contract end to end on seeded random graphs, plus
//! the iterative-Dinic depth guarantee on a long path.

use dircut_graph::flow::FlowNetwork;
use dircut_graph::generators::{connected_gnp, random_balanced_digraph};
use dircut_graph::gomory_hu::GomoryHuTree;
use dircut_graph::karger::enumerate_near_min_cuts_threaded;
use dircut_graph::mincut::{edge_connectivity_threaded, global_min_cut_directed_threaded};
use dircut_graph::{NodeId, UnGraph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn edge_connectivity_is_identical_across_thread_counts() {
    for seed in 0..3u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = connected_gnp(18, 0.3, &mut rng);
        let reference = edge_connectivity_threaded(&g, 1).unwrap();
        for threads in THREAD_COUNTS {
            let got = edge_connectivity_threaded(&g, threads).unwrap();
            assert_eq!(got.0, reference.0, "seed {seed} threads {threads}");
            assert_eq!(got.1, reference.1, "seed {seed} threads {threads}");
        }
    }
}

#[test]
fn directed_global_min_cut_is_identical_across_thread_counts() {
    for seed in 0..3u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = random_balanced_digraph(14, 0.35, 2.0, &mut rng);
        let reference = global_min_cut_directed_threaded(&g, 1);
        for threads in THREAD_COUNTS {
            let got = global_min_cut_directed_threaded(&g, threads);
            assert_eq!(
                got.value.to_bits(),
                reference.value.to_bits(),
                "seed {seed} threads {threads}"
            );
            assert_eq!(got.side, reference.side, "seed {seed} threads {threads}");
        }
    }
}

#[test]
fn gomory_hu_tree_is_identical_across_thread_counts() {
    for seed in 0..3u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(100 + seed);
        let g = random_balanced_digraph(16, 0.4, 2.0, &mut rng);
        // The per-sink rebuild reference is the seed implementation;
        // every threaded build must reproduce it exactly.
        let reference = GomoryHuTree::build_reference(&g);
        for threads in THREAD_COUNTS {
            let got = GomoryHuTree::build_threaded(&g, threads);
            assert_eq!(got, reference, "seed {seed} threads {threads}");
        }
    }
}

#[test]
fn near_min_cut_enumeration_is_identical_across_thread_counts() {
    for seed in 0..2u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = random_balanced_digraph(12, 0.5, 1.5, &mut rng);
        let reference = {
            let mut master = ChaCha8Rng::seed_from_u64(500 + seed);
            enumerate_near_min_cuts_threaded(&g, 1.5, 32, &mut master, 1)
        };
        assert!(!reference.is_empty(), "seed {seed}");
        for threads in THREAD_COUNTS {
            let mut master = ChaCha8Rng::seed_from_u64(500 + seed);
            let got = enumerate_near_min_cuts_threaded(&g, 1.5, 32, &mut master, threads);
            assert_eq!(got.len(), reference.len(), "seed {seed} threads {threads}");
            for ((v1, s1), (v2, s2)) in reference.iter().zip(&got) {
                assert_eq!(v1.to_bits(), v2.to_bits(), "seed {seed} threads {threads}");
                assert_eq!(s1, s2, "seed {seed} threads {threads}");
            }
        }
    }
}

#[test]
fn iterative_dinic_handles_a_ten_thousand_node_path() {
    // The recursive dfs_push used to risk a stack overflow here: one
    // augmenting path 9_999 arcs deep. The iterative walk must find the
    // unit flow and the singleton source-side cut.
    let n = 10_000;
    let mut g = UnGraph::new(n);
    for i in 0..n - 1 {
        g.add_edge(NodeId::new(i), NodeId::new(i + 1));
    }
    let mut net: FlowNetwork<u64> = dircut_graph::flow::unit_network_from_ungraph(&g);
    assert_eq!(net.max_flow(NodeId::new(0), NodeId::new(n - 1)), 1);
    let side = net.min_cut_side(NodeId::new(0));
    assert_eq!(side.len(), 1);
    // Re-solve after a snapshot reset: same network, same answer.
    net.reset();
    assert_eq!(net.max_flow(NodeId::new(n - 1), NodeId::new(0)), 1);
}
