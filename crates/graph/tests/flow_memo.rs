//! Regression tests for the `FlowMemo` drop-never-migrate contract.
//!
//! The solve-replay memo on a [`FlowNetwork`] records post-solve
//! residual state keyed by `(source, sink)`. A max-flow value depends
//! on *global* connectivity — a new arc between vertices disjoint from
//! both terminals can still open an augmenting path — so, unlike the
//! `CutMemo`, terminal-disjointness is not a sound retention test and
//! the memo is **dropped, never migrated** across any mutation. These
//! tests pin the observable consequences of that contract:
//!
//! * a mutation (`add_undirected`) clears the memo in place,
//! * a network rebuilt after a graph mutation starts cold and still
//!   produces the reference answers,
//! * the `*_with_network` entry points reject stale networks loudly
//!   instead of answering for a graph that no longer exists.

use dircut_graph::cache;
use dircut_graph::flow::{symmetric_network_from_digraph, unit_network_from_ungraph};
use dircut_graph::gomory_hu::GomoryHuTree;
use dircut_graph::mincut::{edge_connectivity, edge_connectivity_with_network};
use dircut_graph::{DiGraph, NodeId, UnGraph};

/// Two triangles joined by a single bridge — the min cut (1) is the
/// bridge, and per-pair cuts differ enough that a stale answer would
/// be visible.
fn bridged_ungraph() -> UnGraph {
    let mut g = UnGraph::new(6);
    for &(u, v) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
        g.add_edge(NodeId::new(u), NodeId::new(v));
    }
    g
}

/// Weighted digraph with asymmetric weights so the symmetrized
/// Gomory–Hu cuts are all distinct.
fn weighted_digraph() -> DiGraph {
    let mut g = DiGraph::new(5);
    for &(u, v, w) in &[
        (0, 1, 3.0),
        (1, 2, 1.0),
        (2, 0, 2.0),
        (2, 3, 0.5),
        (3, 4, 4.0),
        (4, 2, 1.5),
    ] {
        g.add_edge(NodeId::new(u), NodeId::new(v), w);
    }
    g
}

#[test]
fn mutation_clears_the_warm_memo_in_place() {
    cache::set_enabled(true);
    let g = bridged_ungraph();
    let mut net = unit_network_from_ungraph(&g);
    assert_eq!(net.warm_len(), 0, "fresh network must start cold");

    let flow = net.max_flow(NodeId::new(0), NodeId::new(5));
    assert_eq!(flow, 1);
    assert_eq!(net.warm_len(), 1, "pristine cold solve must memoize");

    // Any mutation drops the memo wholesale — no entry survives, even
    // ones whose terminals are disjoint from the new arc's endpoints.
    net.add_undirected(NodeId::new(1), NodeId::new(4), 1);
    assert_eq!(net.warm_len(), 0, "memo must be dropped on mutation");
}

#[test]
fn rebuilt_network_starts_cold_and_matches_reference() {
    cache::set_enabled(true);
    let mut g = weighted_digraph();
    let mut net = symmetric_network_from_digraph(&g);
    let before = GomoryHuTree::build_with_network(&g, &mut net, 1);
    assert!(
        net.warm_len() > 0,
        "Gomory–Hu on a pristine network must fill the memo"
    );
    assert_eq!(
        before.global_min_cut(),
        GomoryHuTree::build_reference(&g).global_min_cut()
    );

    // Mutate the graph: the old network is now stale. The supported
    // path is a rebuild, and the rebuilt network must be observably
    // cold — no memo entry migrates across the mutation.
    g.add_edge(NodeId::new(0), NodeId::new(4), 2.0);
    let mut rebuilt = symmetric_network_from_digraph(&g);
    assert_eq!(rebuilt.warm_len(), 0, "rebuilt network must start cold");
    let after = GomoryHuTree::build_with_network(&g, &mut rebuilt, 1);
    let reference = GomoryHuTree::build_reference(&g);
    for u in 0..5usize {
        for v in (u + 1)..5usize {
            let (u, v) = (NodeId::new(u), NodeId::new(v));
            assert_eq!(
                after.min_cut(u, v).to_bits(),
                reference.min_cut(u, v).to_bits(),
                "cold rebuild must reproduce the reference cut for ({u}, {v})"
            );
        }
    }
}

#[test]
fn rebuilt_unit_network_matches_edge_connectivity() {
    cache::set_enabled(true);
    let mut g = bridged_ungraph();
    let mut net = unit_network_from_ungraph(&g);
    let (k, _) = edge_connectivity_with_network(&g, &mut net, 1).unwrap();
    assert_eq!(k, 1);

    g.add_edge(NodeId::new(0), NodeId::new(5));
    let mut rebuilt = unit_network_from_ungraph(&g);
    assert_eq!(rebuilt.warm_len(), 0, "rebuilt network must start cold");
    let (k2, side) = edge_connectivity_with_network(&g, &mut rebuilt, 1).unwrap();
    let (k_ref, _) = edge_connectivity(&g).unwrap();
    assert_eq!(k2, k_ref);
    assert_eq!(k2, 2, "second bridge raises the connectivity");
    assert!(!side.is_empty());
}

#[test]
#[should_panic(expected = "stale flow network")]
fn edge_connectivity_rejects_a_stale_network() {
    let mut g = bridged_ungraph();
    let mut net = unit_network_from_ungraph(&g);
    g.add_edge(NodeId::new(0), NodeId::new(4));
    // The network predates the mutation: reusing it must panic, not
    // silently answer for the old graph.
    let _ = edge_connectivity_with_network(&g, &mut net, 1);
}

#[test]
#[should_panic(expected = "stale flow network")]
fn gomory_hu_rejects_a_stale_network() {
    let mut g = weighted_digraph();
    let mut net = symmetric_network_from_digraph(&g);
    g.add_edge(NodeId::new(1), NodeId::new(3), 1.0);
    let _ = GomoryHuTree::build_with_network(&g, &mut net, 1);
}
