//! Linear cut sketches — sketching quadratic forms, the \[ACK+16\] and
//! \[AGM12\] upper-bound lineage the paper builds on.
//!
//! For the undirected (symmetrized) cut, `cut(S) = ¼‖B·x_S‖²` where
//! `B` is the `√w`-scaled signed incidence matrix and
//! `x_S = 1_S − 1_{V∖S} ∈ {±1}ⁿ`. A Rademacher sketch `Π ∈ {±1}^{k×m}`
//! compressed as `M = ΠB ∈ ℝ^{k×n}` supports the *for-each* estimate
//! `ĉut(S) = ‖M·x_S‖² / (4k)`: unbiased, with relative standard
//! deviation `O(1/√k)` per fixed cut, so `k = Θ(1/ε²)` rows give the
//! Definition 2.3 guarantee. Being a *linear* function of the edge
//! multiset, sketches of edge-disjoint subgraphs **merge by matrix
//! addition** — the property that makes linear measurements the tool
//! of choice for distributed and streaming graphs [AGM12, McG14].
//!
//! The same sketch does *not* give a for-all guarantee at `k = O(1/ε²)`
//! (there are exponentially many cuts; the test suite exhibits the
//! failure), which is the for-each/for-all separation of the paper in
//! upper-bound form.

use crate::serialize::SketchEncoder;
use crate::traits::{CutOracle, CutSketch, CutSketcher, SketchKind};
use dircut_graph::{DiGraph, NodeSet};
use rand::Rng;

/// A sketched graph: `M = ΠB` plus the row count.
#[derive(Debug, Clone)]
pub struct LinearCutSketch {
    /// Row-major `k×n` matrix `ΠB`.
    m: Vec<f64>,
    rows: usize,
    n: usize,
    size_bits: usize,
}

impl LinearCutSketch {
    fn new(m: Vec<f64>, rows: usize, n: usize) -> Self {
        let mut enc = SketchEncoder::new();
        enc.put_bits(rows as u64, 32);
        enc.put_bits(n as u64, 32);
        for &v in &m {
            enc.put_f64(v);
        }
        let (_, size_bits) = enc.finish();
        Self {
            m,
            rows,
            n,
            size_bits,
        }
    }

    /// Number of sketch rows `k`.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Estimates the *undirected* cut weight `w(S,V∖S) + w(V∖S,S)` of
    /// the sketched digraph.
    #[must_use]
    pub fn undirected_cut_estimate(&self, s: &NodeSet) -> f64 {
        assert_eq!(s.universe(), self.n, "node-set universe mismatch");
        let mut total = 0.0;
        for row in self.m.chunks_exact(self.n) {
            let mut y = 0.0;
            for (v, &coef) in row.iter().enumerate() {
                let x = if s.contains(dircut_graph::NodeId::new(v)) {
                    1.0
                } else {
                    -1.0
                };
                y += coef * x;
            }
            total += y * y;
        }
        total / (4.0 * self.rows as f64)
    }

    /// Merges with a sketch of an edge-disjoint subgraph (linearity:
    /// `Π(B₁ ⊎ B₂) = Π₁B₁ + Π₂B₂`).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    #[must_use]
    pub fn merge(&self, other: &Self) -> Self {
        assert_eq!(self.rows, other.rows, "row-count mismatch");
        assert_eq!(self.n, other.n, "node-count mismatch");
        let m = self.m.iter().zip(&other.m).map(|(a, b)| a + b).collect();
        Self::new(m, self.rows, self.n)
    }
}

impl CutOracle for LinearCutSketch {
    fn universe(&self) -> usize {
        self.n
    }

    /// For symmetric digraphs, `w(S, V∖S)` is half the undirected cut.
    /// (For asymmetric graphs a single quadratic form cannot separate
    /// the two directions; use the balanced sketches instead.)
    fn cut_out_estimate(&self, s: &NodeSet) -> f64 {
        self.undirected_cut_estimate(s) / 2.0
    }
}

impl CutSketch for LinearCutSketch {
    fn size_bits(&self) -> usize {
        self.size_bits
    }
}

/// Sketcher producing [`LinearCutSketch`]es with `k = ⌈c/ε²⌉` rows.
#[derive(Debug, Clone, Copy)]
pub struct LinearSketcher {
    /// Target per-cut relative error ε.
    pub epsilon: f64,
    /// Row-count constant: `k = ⌈rows_constant/ε²⌉`.
    pub rows_constant: f64,
}

impl LinearSketcher {
    /// Creates a sketcher with the default row constant (8).
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1`.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "ε must be in (0,1)");
        Self {
            epsilon,
            rows_constant: 8.0,
        }
    }

    /// The number of rows used.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        (self.rows_constant / (self.epsilon * self.epsilon)).ceil() as usize
    }
}

impl CutSketcher for LinearSketcher {
    type Sketch = LinearCutSketch;

    fn kind(&self) -> SketchKind {
        SketchKind::ForEach
    }

    fn sketch<R: Rng>(&self, g: &DiGraph, rng: &mut R) -> LinearCutSketch {
        let n = g.num_nodes();
        let k = self.num_rows();
        let mut m = vec![0.0f64; k * n];
        for e in g.edges() {
            let root = e.weight.sqrt();
            for r in 0..k {
                let sigma = if rng.gen_bool(0.5) { root } else { -root };
                m[r * n + e.from.index()] += sigma;
                m[r * n + e.to.index()] -= sigma;
            }
        }
        LinearCutSketch::new(m, k, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircut_graph::NodeId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn symmetric_graph(n: usize, seed: u64) -> DiGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut g = DiGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.6) {
                    let w = rng.gen_range(0.5..3.0);
                    g.add_edge(NodeId::new(u), NodeId::new(v), w);
                    g.add_edge(NodeId::new(v), NodeId::new(u), w);
                }
            }
        }
        g
    }

    fn undirected_cut(g: &DiGraph, s: &NodeSet) -> f64 {
        let (out, into) = g.cut_both(s);
        out + into
    }

    #[test]
    fn estimator_is_unbiased() {
        let g = symmetric_graph(10, 0);
        let s = NodeSet::from_indices(10, 0..5);
        let truth = undirected_cut(&g, &s);
        let sketcher = LinearSketcher::new(0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let reps = 300;
        let mean: f64 = (0..reps)
            .map(|_| sketcher.sketch(&g, &mut rng).undirected_cut_estimate(&s))
            .sum::<f64>()
            / reps as f64;
        assert!(
            (mean - truth).abs() < 0.05 * truth,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn per_cut_estimates_concentrate_at_the_for_each_rate() {
        let g = symmetric_graph(12, 2);
        let s = NodeSet::from_indices(12, [0, 3, 4, 7, 9]);
        let truth = undirected_cut(&g, &s);
        let eps = 0.3;
        let sketcher = LinearSketcher::new(eps);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let trials = 100;
        let within = (0..trials)
            .filter(|_| {
                let est = sketcher.sketch(&g, &mut rng).undirected_cut_estimate(&s);
                (est - truth).abs() <= eps * truth
            })
            .count();
        assert!(
            within * 3 >= trials * 2,
            "only {within}/{trials} within (1±ε)"
        );
    }

    #[test]
    fn too_few_rows_fail_some_cut_somewhere() {
        // The for-each/for-all separation: with k = O(1) rows some cut
        // of the hypercube of cuts is badly estimated.
        let g = symmetric_graph(10, 4);
        let sketcher = LinearSketcher {
            epsilon: 0.9,
            rows_constant: 2.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let sk = sketcher.sketch(&g, &mut rng);
        let mut worst: f64 = 0.0;
        for mask in 1u32..(1 << 9) {
            let s = NodeSet::from_indices(10, (0..9).filter(|i| mask >> i & 1 == 1).map(|i| i + 1));
            let truth = undirected_cut(&g, &s);
            if truth > 0.0 {
                worst = worst.max((sk.undirected_cut_estimate(&s) - truth).abs() / truth);
            }
        }
        assert!(
            worst > 0.5,
            "all cuts accurate with only {} rows?!",
            sk.rows()
        );
    }

    #[test]
    fn merging_subgraph_sketches_equals_whole_graph_distribution() {
        // Linearity: sketch(G1) + sketch(G2) is a valid sketch of
        // G1 ∪ G2 — its estimate concentrates around the union's cut.
        let g = symmetric_graph(10, 6);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // Split edges into two halves (by index parity).
        let mut g1 = DiGraph::new(10);
        let mut g2 = DiGraph::new(10);
        for (i, e) in g.edges().iter().enumerate() {
            if i % 2 == 0 {
                g1.add_edge(e.from, e.to, e.weight);
            } else {
                g2.add_edge(e.from, e.to, e.weight);
            }
        }
        let sketcher = LinearSketcher::new(0.3);
        let s = NodeSet::from_indices(10, 0..5);
        let truth = undirected_cut(&g, &s);
        let reps = 100;
        let mean: f64 = (0..reps)
            .map(|_| {
                let sk1 = sketcher.sketch(&g1, &mut rng);
                let sk2 = sketcher.sketch(&g2, &mut rng);
                sk1.merge(&sk2).undirected_cut_estimate(&s)
            })
            .sum::<f64>()
            / reps as f64;
        assert!(
            (mean - truth).abs() < 0.1 * truth,
            "merged mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn size_is_rows_times_nodes() {
        let g = symmetric_graph(14, 8);
        let sketcher = LinearSketcher::new(0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let sk = sketcher.sketch(&g, &mut rng);
        assert_eq!(sk.rows(), 32);
        assert_eq!(sk.size_bits(), 64 + 32 * 14 * 64);
    }

    #[test]
    fn cut_oracle_halves_for_symmetric_graphs() {
        let g = symmetric_graph(8, 10);
        let s = NodeSet::from_indices(8, 0..4);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let sk = LinearSketcher::new(0.2).sketch(&g, &mut rng);
        let direct = g.cut_out(&s);
        assert!((sk.cut_out_estimate(&s) - direct).abs() <= 0.4 * direct);
    }

    #[test]
    fn empty_cut_estimates_zero() {
        let g = symmetric_graph(6, 12);
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let sk = LinearSketcher::new(0.5).sketch(&g, &mut rng);
        // S = V: x is all-ones, Bx = 0 exactly (every edge row cancels).
        let s = NodeSet::full(6);
        assert!(sk.undirected_cut_estimate(&s).abs() < 1e-18);
    }
}
