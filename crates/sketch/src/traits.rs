//! Core sketch abstractions.
//!
//! Definitions 2.2 and 2.3 of the paper quantify over *any* data
//! structure from which cut values can be recovered; [`CutSketch`] is
//! that data structure, [`CutSketcher`] the algorithm 𝒜 producing it,
//! and [`CutOracle`] the minimal query interface the lower-bound
//! decoders need (so they run identically against exact graphs,
//! honest sketches, and adversarially noisy ones).

use dircut_graph::error::check_universe;
use dircut_graph::{DiGraph, NodeSet, UniverseMismatch};
use rand::Rng;

/// Which guarantee a sketch implementation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SketchKind {
    /// Definition 2.3: each fixed cut is `(1±ε)`-approximated with
    /// probability ≥ 2/3 over the sketch's randomness.
    ForEach,
    /// Definition 2.2: with probability ≥ 2/3, *all* cuts are
    /// `(1±ε)`-approximated simultaneously.
    ForAll,
}

/// Anything that can estimate directed cut values `w(S, V∖S)`.
pub trait CutOracle {
    /// The node universe the oracle answers over: every queried
    /// [`NodeSet`] must have exactly this universe.
    fn universe(&self) -> usize;

    /// An estimate of the directed cut value `w(S, V∖S)`.
    fn cut_out_estimate(&self, s: &NodeSet) -> f64;

    /// Checked variant of [`cut_out_estimate`]: validates the queried
    /// set's universe first instead of panicking on a mismatch. This is
    /// the entry point remote decoders use — a corrupted or truncated
    /// query must surface as an error, not a panic.
    ///
    /// # Errors
    /// [`UniverseMismatch`] if `s.universe() != self.universe()`.
    ///
    /// [`cut_out_estimate`]: CutOracle::cut_out_estimate
    fn try_cut_out_estimate(&self, s: &NodeSet) -> Result<f64, UniverseMismatch> {
        check_universe(self.universe(), s.universe())?;
        Ok(self.cut_out_estimate(s))
    }

    /// Estimates for a batch of cut queries, in query order.
    ///
    /// The default answers each query with [`cut_out_estimate`]
    /// (bit-identical by construction); implementations backed by an
    /// edge list override it with the word-parallel batch kernel from
    /// `dircut_graph::cuteval`, which answers 64 queries per edge pass.
    /// Overrides must preserve the per-query bits so decoders can
    /// switch freely between the two entry points.
    ///
    /// [`cut_out_estimate`]: CutOracle::cut_out_estimate
    fn cut_out_estimates(&self, sets: &[NodeSet]) -> Vec<f64> {
        sets.iter().map(|s| self.cut_out_estimate(s)).collect()
    }
}

/// An exact oracle backed by the graph itself (zero error; the
/// reference point for every experiment).
#[derive(Debug, Clone, Copy)]
pub struct ExactOracle<'a> {
    graph: &'a DiGraph,
}

impl<'a> ExactOracle<'a> {
    /// Wraps a graph.
    #[must_use]
    pub fn new(graph: &'a DiGraph) -> Self {
        Self { graph }
    }
}

impl CutOracle for ExactOracle<'_> {
    fn universe(&self) -> usize {
        self.graph.num_nodes()
    }

    fn cut_out_estimate(&self, s: &NodeSet) -> f64 {
        self.graph.cut_out(s)
    }

    fn cut_out_estimates(&self, sets: &[NodeSet]) -> Vec<f64> {
        dircut_graph::cuteval::cut_out_batch(self.graph, sets)
    }
}

/// A produced cut sketch: queryable and honestly sized.
pub trait CutSketch: CutOracle {
    /// The exact size of the sketch in bits, measured by serializing
    /// the data structure (not by asymptotic claims).
    fn size_bits(&self) -> usize;
}

/// A cut sketching algorithm (the paper's 𝒜).
pub trait CutSketcher {
    /// The sketch type produced.
    type Sketch: CutSketch;

    /// Which guarantee this sketcher targets.
    fn kind(&self) -> SketchKind;

    /// Builds a sketch of `g`.
    fn sketch<R: Rng>(&self, g: &DiGraph, rng: &mut R) -> Self::Sketch;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircut_graph::NodeId;

    #[test]
    fn exact_oracle_returns_true_cut() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), 2.0);
        g.add_edge(NodeId::new(1), NodeId::new(2), 3.0);
        g.add_edge(NodeId::new(2), NodeId::new(0), 4.0);
        let oracle = ExactOracle::new(&g);
        let s = NodeSet::from_indices(3, [0, 1]);
        assert_eq!(oracle.cut_out_estimate(&s), 3.0);
    }

    #[test]
    fn checked_queries_reject_wrong_universe_without_panicking() {
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId::new(0), NodeId::new(1), 1.0);
        let oracle = ExactOracle::new(&g);
        let good = NodeSet::from_indices(4, [0]);
        assert_eq!(oracle.try_cut_out_estimate(&good), Ok(1.0));
        let bad = NodeSet::from_indices(7, [0]);
        assert_eq!(
            oracle.try_cut_out_estimate(&bad),
            Err(UniverseMismatch {
                expected: 4,
                got: 7
            })
        );
    }

    #[test]
    fn batched_estimates_match_single_queries_bitwise() {
        let mut g = DiGraph::new(5);
        g.add_edge(NodeId::new(0), NodeId::new(1), 0.7);
        g.add_edge(NodeId::new(1), NodeId::new(2), 1.3);
        g.add_edge(NodeId::new(3), NodeId::new(4), 2.9);
        g.add_edge(NodeId::new(4), NodeId::new(0), 0.1);
        let oracle = ExactOracle::new(&g);
        let sets: Vec<NodeSet> = (1u32..31)
            .map(|mask| NodeSet::from_indices(5, (0..5).filter(|i| mask >> i & 1 == 1)))
            .collect();
        let batch = oracle.cut_out_estimates(&sets);
        for (s, &b) in sets.iter().zip(&batch) {
            assert_eq!(b.to_bits(), oracle.cut_out_estimate(s).to_bits());
        }
    }
}
