//! Adversarial sketches for the lower-bound experiments.
//!
//! The paper's theorems say *no* sketch below a certain size (or above
//! a certain error) can support the decoders. To make that observable,
//! these sketches deliberately sit on the wrong side of the line:
//!
//! * [`NoisyOracle`] — answers every cut query with the exact value
//!   perturbed by a deterministic-per-cut relative error of magnitude
//!   `ε` (the worst case a `(1±ε)` sketch is allowed to be). Feeding it
//!   to a decoder with a *larger* ε than the decoder tolerates shows
//!   the decoding threshold.
//! * [`BudgetedSketch`] — any-size straw man: stores only the heaviest
//!   edges that fit a bit budget plus one global correction constant.
//!   Below the paper's Ω(·) budget, decoders must start failing.

use crate::edgelist::EdgeListSketch;
use crate::serialize::SketchEncoder;
use crate::traits::{CutOracle, CutSketch};
use dircut_graph::{DiGraph, NodeSet};
use std::hash::{Hash, Hasher};

/// How the noisy oracle perturbs true cut values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseModel {
    /// Always `±ε` relative, sign chosen pseudo-randomly per cut
    /// (the worst case allowed by a `(1±ε)` guarantee).
    SignedRelative,
    /// Uniform relative error in `[−ε, ε]` per cut.
    UniformRelative,
}

/// A cut oracle with exactly-`(1±ε)` answers, deterministic per cut.
///
/// The per-cut perturbation is derived by hashing the queried node set
/// with a fixed seed, so repeated queries of the same cut are
/// consistent — exactly how a real (deterministic-after-randomness)
/// sketch behaves.
#[derive(Debug, Clone)]
pub struct NoisyOracle {
    graph: DiGraph,
    epsilon: f64,
    seed: u64,
    model: NoiseModel,
}

impl NoisyOracle {
    /// Wraps a graph with `(1±ε)` noise.
    ///
    /// # Panics
    /// Panics unless `0 ≤ ε < 1`.
    #[must_use]
    pub fn new(graph: DiGraph, epsilon: f64, seed: u64, model: NoiseModel) -> Self {
        assert!((0.0..1.0).contains(&epsilon), "ε must be in [0,1)");
        Self {
            graph,
            epsilon,
            seed,
            model,
        }
    }

    fn cut_hash(&self, s: &NodeSet) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut h);
        s.hash(&mut h);
        h.finish()
    }
}

impl CutOracle for NoisyOracle {
    fn universe(&self) -> usize {
        self.graph.num_nodes()
    }

    fn cut_out_estimate(&self, s: &NodeSet) -> f64 {
        let truth = self.graph.cut_out(s);
        let h = self.cut_hash(s);
        let rel = match self.model {
            NoiseModel::SignedRelative => {
                if h & 1 == 0 {
                    self.epsilon
                } else {
                    -self.epsilon
                }
            }
            NoiseModel::UniformRelative => {
                // Map 53 high bits to [−ε, ε].
                let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
                (2.0 * u - 1.0) * self.epsilon
            }
        };
        truth * (1.0 + rel)
    }
}

/// A sketch truncated to a bit budget: keeps the heaviest edges that
/// fit and one `f64` holding the total dropped weight (so estimates
/// stay roughly unbiased for large cuts).
#[derive(Debug, Clone)]
pub struct BudgetedSketch {
    inner: EdgeListSketch,
    dropped_total: f64,
    dropped_edges: usize,
    total_edges: usize,
    size_bits: usize,
}

impl BudgetedSketch {
    /// Builds a sketch of at most `budget_bits` bits (plus a fixed
    /// ~192-bit header) from the heaviest edges of `g`.
    #[must_use]
    pub fn new(g: &DiGraph, budget_bits: usize) -> Self {
        let n = g.num_nodes();
        let w = crate::serialize::index_width(n);
        let per_edge = 2 * w as usize + 64;
        let keep = budget_bits / per_edge;
        let mut edges: Vec<(u32, u32, f64)> = g
            .edges()
            .iter()
            .map(|e| (e.from.0, e.to.0, e.weight))
            .collect();
        edges.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("NaN weight"));
        let dropped: Vec<_> = edges.split_off(keep.min(edges.len()));
        let dropped_total: f64 = dropped.iter().map(|e| e.2).sum();
        let inner = EdgeListSketch::new(n, edges);
        let mut enc = SketchEncoder::new();
        enc.put_f64(dropped_total);
        enc.put_bits(dropped.len() as u64, 64);
        let (_, header) = enc.finish();
        let size_bits = inner.size_bits() + header;
        Self {
            inner,
            dropped_total,
            dropped_edges: dropped.len(),
            total_edges: g.num_edges(),
            size_bits,
        }
    }

    /// How many edges were thrown away to meet the budget.
    #[must_use]
    pub fn dropped_edges(&self) -> usize {
        self.dropped_edges
    }

    /// Fraction of edges retained.
    #[must_use]
    pub fn retention(&self) -> f64 {
        if self.total_edges == 0 {
            1.0
        } else {
            (self.total_edges - self.dropped_edges) as f64 / self.total_edges as f64
        }
    }
}

impl CutOracle for BudgetedSketch {
    fn universe(&self) -> usize {
        self.inner.universe()
    }

    fn cut_out_estimate(&self, s: &NodeSet) -> f64 {
        // Stored edges answered exactly; dropped mass approximated by
        // assuming the average fraction of dropped edges crosses the
        // cut in the queried direction (|S|·|V∖S| / n² of ordered
        // pairs, halved for direction).
        let n = s.universe() as f64;
        let k = s.len() as f64;
        let crossing_fraction = k * (n - k) / (n * n);
        self.inner.cut_out_estimate(s) + self.dropped_total * crossing_fraction
    }
}

impl CutSketch for BudgetedSketch {
    fn size_bits(&self) -> usize {
        self.size_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircut_graph::NodeId;

    fn ring(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for i in 0..n {
            g.add_edge(NodeId::new(i), NodeId::new((i + 1) % n), 1.0 + i as f64);
            g.add_edge(NodeId::new((i + 1) % n), NodeId::new(i), 1.0);
        }
        g
    }

    #[test]
    fn noisy_oracle_stays_within_epsilon() {
        let g = ring(8);
        let oracle = NoisyOracle::new(g.clone(), 0.1, 7, NoiseModel::UniformRelative);
        for mask in 1u32..255 {
            let s = NodeSet::from_indices(8, (0..8).filter(|i| mask >> i & 1 == 1));
            let truth = g.cut_out(&s);
            let est = oracle.cut_out_estimate(&s);
            assert!((est - truth).abs() <= 0.1 * truth + 1e-12);
        }
    }

    #[test]
    fn noisy_oracle_is_deterministic_per_cut() {
        let g = ring(6);
        let oracle = NoisyOracle::new(g, 0.2, 3, NoiseModel::SignedRelative);
        let s = NodeSet::from_indices(6, [0, 3]);
        assert_eq!(oracle.cut_out_estimate(&s), oracle.cut_out_estimate(&s));
    }

    #[test]
    fn signed_noise_hits_both_signs() {
        let g = ring(10);
        let oracle = NoisyOracle::new(g.clone(), 0.5, 1, NoiseModel::SignedRelative);
        let mut saw_high = false;
        let mut saw_low = false;
        for i in 0..10 {
            let s = NodeSet::from_indices(10, [i]);
            let truth = g.cut_out(&s);
            let est = oracle.cut_out_estimate(&s);
            if est > truth {
                saw_high = true;
            }
            if est < truth {
                saw_low = true;
            }
        }
        assert!(saw_high && saw_low);
    }

    #[test]
    fn zero_epsilon_noise_is_exact() {
        let g = ring(6);
        let oracle = NoisyOracle::new(g.clone(), 0.0, 9, NoiseModel::SignedRelative);
        let s = NodeSet::from_indices(6, [1, 2]);
        assert_eq!(oracle.cut_out_estimate(&s), g.cut_out(&s));
    }

    #[test]
    fn budgeted_sketch_respects_budget() {
        let g = ring(32);
        for budget in [500usize, 2000, 8000] {
            let sk = BudgetedSketch::new(&g, budget);
            // inner header is 64 bits + our 128-bit header; allow that slack.
            assert!(
                sk.size_bits() <= budget + 64 + 128 + 74,
                "size {} over budget {}",
                sk.size_bits(),
                budget
            );
        }
    }

    #[test]
    fn huge_budget_keeps_everything_and_is_exact() {
        let g = ring(8);
        let sk = BudgetedSketch::new(&g, 1 << 20);
        assert_eq!(sk.dropped_edges(), 0);
        let s = NodeSet::from_indices(8, [0, 1, 2]);
        assert!((sk.cut_out_estimate(&s) - g.cut_out(&s)).abs() < 1e-12);
    }

    #[test]
    fn tiny_budget_drops_most_edges() {
        let g = ring(64);
        let sk = BudgetedSketch::new(&g, 300);
        assert!(sk.retention() < 0.1, "retention {}", sk.retention());
    }
}
