//! The cut-balance-aware sampler of Cen–Cheng–Panigrahi–Sun,
//! "Sparsification of Directed Graphs via Cut Balance"
//! (arXiv 2006.01975), in measured form.
//!
//! The paper shows a β-balanced digraph admits a for-all cut
//! sparsifier with `Õ(n·β/ε²)` edges by sampling edge `e` with
//! probability `p_e = min(1, ρ/λ_e)` where `λ_e` is the directed local
//! edge connectivity from `e`'s tail to its head and the rate
//!
//! ```text
//! ρ = c · γ · ln n / ε²,    γ = (1 + β)(3 + log₂ n)
//! ```
//!
//! scales with the balance certificate `β` (obtained here from
//! `dircut_graph::balance` — [`exact_balance_factor`] on small graphs,
//! [`edgewise_balance_bound`] as the cheap sound certificate).
//! Surviving edges are reweighted by `1/p_e`.
//!
//! This implementation estimates `λ_e` with the shared
//! [`directed_strength_estimates`] lower bound (Nagamochi–Ibaraki
//! skeleton labels scaled by `1/(1+β)`); underestimating `λ_e` only
//! raises `p_e`, so the guarantee direction is preserved and the
//! measured `max_relative_cut_error` stays honest. At the graph sizes
//! the repo sweeps the faithful constants usually drive `p_e` to 1 —
//! the zoo chart shows exactly where the asymptotic rate starts to
//! pay, rather than assuming it.
//!
//! [`exact_balance_factor`]: dircut_graph::balance::exact_balance_factor
//! [`edgewise_balance_bound`]: dircut_graph::balance::edgewise_balance_bound
//! [`directed_strength_estimates`]: dircut_graph::nagamochi::directed_strength_estimates

use crate::edgelist::EdgeListSketch;
use crate::traits::{CutSketcher, SketchKind};
use dircut_graph::nagamochi::directed_strength_estimates;
use dircut_graph::DiGraph;
use rand::Rng;

/// Cut-balance-scaled strength sampler (arXiv 2006.01975).
#[derive(Debug, Clone, Copy)]
pub struct CutBalanceSketcher {
    /// Target relative error ε.
    pub epsilon: f64,
    /// Balance certificate β ≥ 1 for the input graphs.
    pub beta: f64,
    /// Oversampling constant `c` in `ρ = c·γ·ln n/ε²`.
    pub oversample: f64,
}

impl CutBalanceSketcher {
    /// Creates a sampler with the default oversampling constant (1).
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1` and `β ≥ 1`.
    #[must_use]
    pub fn new(epsilon: f64, beta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "ε must be in (0,1)");
        assert!(beta >= 1.0, "β must be ≥ 1");
        Self {
            epsilon,
            beta,
            oversample: 1.0,
        }
    }

    /// The β-scaled sampling rate `ρ = c·(1+β)(3+log₂ n)·ln n/ε²`.
    #[must_use]
    pub fn sampling_rate(&self, n: usize) -> f64 {
        let n = (n as f64).max(2.0);
        let gamma = (1.0 + self.beta) * (3.0 + n.log2());
        self.oversample * gamma * n.ln() / (self.epsilon * self.epsilon)
    }
}

impl CutSketcher for CutBalanceSketcher {
    type Sketch = EdgeListSketch;

    fn kind(&self) -> SketchKind {
        SketchKind::ForAll
    }

    fn sketch<R: Rng>(&self, g: &DiGraph, rng: &mut R) -> EdgeListSketch {
        let rho = self.sampling_rate(g.num_nodes());
        let strengths = directed_strength_estimates(g, self.beta);
        let mut kept = Vec::new();
        for (e, &lambda_e) in g.edges().iter().zip(strengths.iter()) {
            let p = if lambda_e > 0.0 {
                (rho / lambda_e).min(1.0)
            } else {
                1.0
            };
            if p >= 1.0 || rng.gen_bool(p) {
                kept.push((e.from.0, e.to.0, e.weight / p));
            }
        }
        EdgeListSketch::new(g.num_nodes(), kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::max_relative_cut_error;
    use crate::traits::CutSketch;
    use dircut_graph::balance::edgewise_balance_bound;
    use dircut_graph::generators::random_balanced_digraph;
    use dircut_graph::NodeId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn small_graphs_are_kept_exact_by_the_faithful_rate() {
        // ρ dominates every strength estimate at n = 12, so the sketch
        // is the graph itself and the measured error is exactly 0.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = random_balanced_digraph(12, 0.8, 4.0, &mut rng);
        let sk = CutBalanceSketcher::new(0.25, 4.0).sketch(&g, &mut rng);
        assert_eq!(sk.num_edges(), g.num_edges());
        assert_eq!(max_relative_cut_error(&g, &sk), 0.0);
    }

    #[test]
    fn forced_subsampling_still_concentrates() {
        // Dropping the oversampling constant far below the proof's
        // requirement forces p < 1; the estimate stays unbiased so the
        // measured error remains moderate on a dense graph.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = random_balanced_digraph(14, 1.0, 1.0, &mut rng);
        let sketcher = CutBalanceSketcher {
            epsilon: 0.9,
            beta: 1.0,
            oversample: 0.01,
        };
        let sk = sketcher.sketch(&g, &mut rng);
        assert!(
            sk.num_edges() < g.num_edges(),
            "kept all {} edges",
            g.num_edges()
        );
        let err = max_relative_cut_error(&g, &sk);
        assert!(err < 2.0, "max relative error {err}");
    }

    #[test]
    fn rate_scales_with_beta() {
        let a = CutBalanceSketcher::new(0.5, 1.0).sampling_rate(64);
        let b = CutBalanceSketcher::new(0.5, 4.0).sampling_rate(64);
        assert!((b / a - 5.0 / 2.0).abs() < 1e-9, "γ must scale by (1+β)");
    }

    #[test]
    fn works_with_the_edgewise_balance_certificate() {
        // The cheap certificate from balance.rs is a sound β for the
        // sampler: p only grows with β, so exactness is preserved.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = random_balanced_digraph(10, 0.9, 2.0, &mut rng);
        let beta = edgewise_balance_bound(&g).expect("balanced generator pairs edges");
        assert!(beta >= 1.0);
        let sk = CutBalanceSketcher::new(0.5, beta).sketch(&g, &mut rng);
        let err = max_relative_cut_error(&g, &sk);
        assert!(err <= 0.5, "max relative error {err}");
    }

    #[test]
    fn reports_for_all_kind_and_bills_wire_bits() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut g = DiGraph::new(4);
        for u in 0..4 {
            for v in 0..4 {
                if u != v {
                    g.add_edge(NodeId::new(u), NodeId::new(v), 1.0);
                }
            }
        }
        let sketcher = CutBalanceSketcher::new(0.5, 1.0);
        assert_eq!(sketcher.kind(), SketchKind::ForAll);
        let sk = sketcher.sketch(&g, &mut rng);
        assert!(sk.size_bits() > 0);
    }
}
