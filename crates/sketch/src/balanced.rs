//! Cut sketches for β-balanced directed graphs — the upper bounds the
//! paper's lower bounds are matched against.
//!
//! * [`BalancedForAllSketcher`] (after [IT18, CCPS21], Õ(nβ/ε²) target):
//!   sample directed edges uniformly at a rate driven by the
//!   *symmetrized* min-cut λ̃ with a `(1+β)` oversampling factor. For a
//!   β-balanced graph every directed cut satisfies
//!   `w(S,V∖S) ≥ λ̃/(1+β)`, so the classic Karger concentration
//!   argument goes through with the extra β factor.
//! * [`BalancedForEachSketcher`] (after [ACK+16, IT18], Õ(n√β/ε)
//!   target): store every node's *exact* weighted out-degree
//!   (`n` doubles) and estimate only the internal mass
//!   `w(S, V∖S) = Σ_{u∈S} d⁺(u) − w(E(S,S))` from edges sampled at a
//!   `1/ε` (not `1/ε²`) rate. Per-cut variance then rides on the
//!   internal edges only, which is what buys the linear `1/ε`.
//!
//! Both are faithful-in-spirit single-level simplifications of the
//! cited constructions (the originals recurse over strength
//! decompositions); their guarantees are *measured* by the test suite
//! and the E5 experiment rather than assumed. DESIGN.md records this
//! substitution.

use crate::edgelist::EdgeListSketch;
use crate::serialize::index_width;
use crate::traits::{CutOracle, CutSketch, CutSketcher, SketchKind};
use dircut_comm::{BitReader, BitWriter, WireEncode, WireError};
use dircut_graph::mincut::stoer_wagner;
use dircut_graph::{DiGraph, NodeId, NodeSet};
use rand::Rng;

/// The symmetrized (undirected) global min-cut λ̃ of a digraph.
#[must_use]
pub fn symmetrized_min_cut(g: &DiGraph) -> f64 {
    stoer_wagner(g).value
}

/// For-all sketcher for β-balanced digraphs.
#[derive(Debug, Clone, Copy)]
pub struct BalancedForAllSketcher {
    /// Target relative error ε.
    pub epsilon: f64,
    /// The balance bound β the input graphs promise.
    pub beta: f64,
    /// Oversampling constant.
    pub oversample: f64,
}

impl BalancedForAllSketcher {
    /// Creates a sketcher with the default oversampling constant (3).
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1` and `β ≥ 1`.
    #[must_use]
    pub fn new(epsilon: f64, beta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "ε must be in (0,1)");
        assert!(beta >= 1.0, "β must be ≥ 1");
        Self {
            epsilon,
            beta,
            oversample: 3.0,
        }
    }

    /// The per-edge sampling probability for graph `g`.
    #[must_use]
    pub fn sample_probability(&self, g: &DiGraph) -> f64 {
        let n = g.num_nodes() as f64;
        let lambda = symmetrized_min_cut(g);
        if lambda <= 0.0 {
            return 1.0;
        }
        (self.oversample * (1.0 + self.beta) * n.ln() / (self.epsilon * self.epsilon * lambda))
            .min(1.0)
    }
}

impl CutSketcher for BalancedForAllSketcher {
    type Sketch = EdgeListSketch;

    fn kind(&self) -> SketchKind {
        SketchKind::ForAll
    }

    fn sketch<R: Rng>(&self, g: &DiGraph, rng: &mut R) -> EdgeListSketch {
        let p = self.sample_probability(g);
        let mut kept = Vec::new();
        for e in g.edges() {
            if p >= 1.0 || rng.gen_bool(p) {
                kept.push((e.from.0, e.to.0, e.weight / p));
            }
        }
        EdgeListSketch::new(g.num_nodes(), kept)
    }
}

/// The sketch produced by [`BalancedForEachSketcher`]: exact weighted
/// out-degrees plus a `1/ε`-rate edge sample for internal mass.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeSampleSketch {
    n: usize,
    out_degree: Vec<f64>,
    sampled: Vec<(u32, u32, f64)>,
}

impl DegreeSampleSketch {
    fn new(n: usize, out_degree: Vec<f64>, sampled: Vec<(u32, u32, f64)>) -> Self {
        Self {
            n,
            out_degree,
            sampled,
        }
    }

    /// Number of sampled edges retained.
    #[must_use]
    pub fn num_sampled_edges(&self) -> usize {
        self.sampled.len()
    }
}

/// Wire format: `n` (64 bits), sampled-edge count (32 bits), the `n`
/// exact out-degrees as `f64`s, then the sampled edges as `u`, `v` in
/// `⌈log₂ n⌉` bits each plus an `f64` weight.
impl WireEncode for DegreeSampleSketch {
    fn encode(&self, w: &mut BitWriter) {
        let width = index_width(self.n);
        w.write_bits(self.n as u64, 64);
        w.write_bits(self.sampled.len() as u64, 32);
        for &d in &self.out_degree {
            w.write_f64(d);
        }
        for &(u, v, weight) in &self.sampled {
            w.write_bits(u64::from(u), width);
            w.write_bits(u64::from(v), width);
            w.write_f64(weight);
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        let n64 = r.try_read_bits(64)?;
        if n64 > u64::from(u32::MAX) {
            return Err(WireError::Invalid(format!("node count {n64} too large")));
        }
        let n = n64 as usize;
        let count = r.try_read_bits(32)? as usize;
        let width = index_width(n);
        let needed = n * 64 + count * (2 * width as usize + 64);
        if r.remaining() < needed {
            return Err(WireError::UnexpectedEnd {
                needed,
                available: r.remaining(),
            });
        }
        let mut out_degree = Vec::with_capacity(n);
        for _ in 0..n {
            out_degree.push(r.try_read_f64()?);
        }
        let mut sampled = Vec::with_capacity(count);
        for _ in 0..count {
            let u = r.try_read_bits(width)?;
            let v = r.try_read_bits(width)?;
            let weight = r.try_read_f64()?;
            if u as usize >= n || v as usize >= n {
                return Err(WireError::Invalid(format!(
                    "edge endpoint ({u}, {v}) outside universe {n}"
                )));
            }
            sampled.push((u as u32, v as u32, weight));
        }
        Ok(Self {
            n,
            out_degree,
            sampled,
        })
    }
}

impl CutOracle for DegreeSampleSketch {
    fn universe(&self) -> usize {
        self.n
    }

    fn cut_out_estimate(&self, s: &NodeSet) -> f64 {
        assert_eq!(s.universe(), self.n, "node-set universe mismatch");
        let degree_sum: f64 = s.iter().map(|v| self.out_degree[v.index()]).sum();
        let internal: f64 = self
            .sampled
            .iter()
            .filter(|&&(u, v, _)| {
                s.contains(NodeId::new(u as usize)) && s.contains(NodeId::new(v as usize))
            })
            .map(|&(_, _, w)| w)
            .sum();
        (degree_sum - internal).max(0.0)
    }
}

impl CutSketch for DegreeSampleSketch {
    fn size_bits(&self) -> usize {
        self.wire_bits()
    }
}

/// For-each sketcher for β-balanced digraphs with a `1/ε` sample rate.
#[derive(Debug, Clone, Copy)]
pub struct BalancedForEachSketcher {
    /// Target relative error ε.
    pub epsilon: f64,
    /// The balance bound β the input graphs promise.
    pub beta: f64,
    /// Oversampling constant.
    pub oversample: f64,
}

impl BalancedForEachSketcher {
    /// Creates a sketcher with the default oversampling constant (2).
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1` and `β ≥ 1`.
    #[must_use]
    pub fn new(epsilon: f64, beta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "ε must be in (0,1)");
        assert!(beta >= 1.0, "β must be ≥ 1");
        Self {
            epsilon,
            beta,
            oversample: 2.0,
        }
    }

    /// The per-edge sampling probability for graph `g`: a `1/ε` rate
    /// with a `√β` oversampling factor.
    #[must_use]
    pub fn sample_probability(&self, g: &DiGraph) -> f64 {
        let n = g.num_nodes() as f64;
        let lambda = symmetrized_min_cut(g);
        if lambda <= 0.0 {
            return 1.0;
        }
        (self.oversample * (1.0 + self.beta).sqrt() * n.ln() / (self.epsilon * lambda)).min(1.0)
    }
}

impl CutSketcher for BalancedForEachSketcher {
    type Sketch = DegreeSampleSketch;

    fn kind(&self) -> SketchKind {
        SketchKind::ForEach
    }

    fn sketch<R: Rng>(&self, g: &DiGraph, rng: &mut R) -> DegreeSampleSketch {
        let n = g.num_nodes();
        let p = self.sample_probability(g);
        let out_degree: Vec<f64> = (0..n)
            .map(|v| g.weighted_out_degree(NodeId::new(v)))
            .collect();
        let mut sampled = Vec::new();
        for e in g.edges() {
            if p >= 1.0 || rng.gen_bool(p) {
                sampled.push((e.from.0, e.to.0, e.weight / p));
            }
        }
        DegreeSampleSketch::new(n, out_degree, sampled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::max_relative_cut_error;
    use dircut_graph::generators::random_balanced_digraph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn for_all_sketch_preserves_all_cuts_of_balanced_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = random_balanced_digraph(12, 0.8, 3.0, &mut rng);
        let sk = BalancedForAllSketcher::new(0.5, 3.0).sketch(&g, &mut rng);
        let err = max_relative_cut_error(&g, &sk);
        assert!(err < 0.6, "max relative error {err}");
    }

    #[test]
    fn for_all_probability_grows_with_beta() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = random_balanced_digraph(14, 0.8, 8.0, &mut rng);
        let p_small = BalancedForAllSketcher::new(0.3, 1.0).sample_probability(&g);
        let p_large = BalancedForAllSketcher::new(0.3, 8.0).sample_probability(&g);
        assert!(p_large >= p_small);
    }

    #[test]
    fn for_each_sketch_estimates_fixed_cut_with_high_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = random_balanced_digraph(16, 0.8, 2.0, &mut rng);
        let sketcher = BalancedForEachSketcher::new(0.25, 2.0);
        let s = NodeSet::from_indices(16, 0..8);
        let truth = g.cut_out(&s);
        let trials = 60;
        let mut within = 0;
        for _ in 0..trials {
            let sk = sketcher.sketch(&g, &mut rng);
            let est = sk.cut_out_estimate(&s);
            if (est - truth).abs() <= 0.25 * truth {
                within += 1;
            }
        }
        // Definition 2.3 only demands 2/3; the simplified construction
        // should clear it comfortably at this scale.
        assert!(
            within * 3 >= trials * 2,
            "only {within}/{trials} within (1±ε)"
        );
    }

    #[test]
    fn for_each_estimator_is_unbiased() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = random_balanced_digraph(12, 0.7, 2.0, &mut rng);
        let sketcher = BalancedForEachSketcher::new(0.3, 2.0);
        let s = NodeSet::from_indices(12, [0, 2, 4, 6, 8, 10]);
        let truth = g.cut_out(&s);
        let reps = 400;
        let mean: f64 = (0..reps)
            .map(|_| sketcher.sketch(&g, &mut rng).cut_out_estimate(&s))
            .sum::<f64>()
            / reps as f64;
        assert!(
            (mean - truth).abs() < 0.05 * truth,
            "mean {mean} vs {truth}"
        );
    }

    #[test]
    fn for_each_sample_rate_is_linear_in_inverse_epsilon() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = random_balanced_digraph(20, 0.9, 2.0, &mut rng);
        let p1 = BalancedForEachSketcher::new(0.4, 2.0).sample_probability(&g);
        let p2 = BalancedForEachSketcher::new(0.2, 2.0).sample_probability(&g);
        // Halving ε should double the rate (both below the cap here).
        if p1 < 1.0 && p2 < 1.0 {
            assert!((p2 / p1 - 2.0).abs() < 1e-9, "p2/p1 = {}", p2 / p1);
        }
    }

    #[test]
    fn sketch_kinds_are_reported() {
        assert_eq!(
            BalancedForAllSketcher::new(0.2, 2.0).kind(),
            SketchKind::ForAll
        );
        assert_eq!(
            BalancedForEachSketcher::new(0.2, 2.0).kind(),
            SketchKind::ForEach
        );
    }

    #[test]
    fn degree_sketch_size_counts_degrees_and_samples() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = random_balanced_digraph(10, 0.6, 2.0, &mut rng);
        let sk = BalancedForEachSketcher::new(0.4, 2.0).sketch(&g, &mut rng);
        let expected = 64 + 32 + 10 * 64 + sk.num_sampled_edges() * (4 + 4 + 64);
        assert_eq!(sk.size_bits(), expected);
    }

    #[test]
    fn degree_sketch_wire_roundtrip_is_lossless() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = random_balanced_digraph(10, 0.6, 2.0, &mut rng);
        let sk = BalancedForEachSketcher::new(0.4, 2.0).sketch(&g, &mut rng);
        let msg = dircut_comm::to_message(&sk);
        assert_eq!(msg.bit_len(), sk.size_bits());
        let back: DegreeSampleSketch = dircut_comm::from_message(&msg).expect("roundtrip");
        assert_eq!(back, sk);
        let s = NodeSet::from_indices(10, [0, 3, 7]);
        assert_eq!(
            back.cut_out_estimate(&s).to_bits(),
            sk.cut_out_estimate(&s).to_bits()
        );
    }

    #[test]
    fn degree_sketch_decode_rejects_truncation() {
        let mut w = BitWriter::new();
        w.write_bits(4, 64); // n = 4
        w.write_bits(0, 32); // no samples
        w.write_f64(1.0); // only one of four promised degrees
        let bad: Result<DegreeSampleSketch, _> = dircut_comm::from_message(&w.finish());
        assert!(
            matches!(bad, Err(WireError::UnexpectedEnd { .. })),
            "{bad:?}"
        );
    }
}
