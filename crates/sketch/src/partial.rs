//! Partial sparsification per Cen–Li–Nanongkai–Panigrahi–Quanrud–
//! Saranurak, "Minimum Cuts in Directed Graphs via Partial
//! Sparsification" (arXiv 2111.08959).
//!
//! The full-sparsification route loses a `log n` (and, directed, a β)
//! factor on *every* edge. The partial route splits the graph at a
//! connectivity threshold `τ`: edges of Nagamochi–Ibaraki strength
//! `k_e ≤ τ` — the ones whose loss would actually move a small cut —
//! are **kept exactly**, while edges buried inside `> τ`-connected
//! regions are sampled at `p_e = min(1, c·ln n/(ε²·k_e))` and
//! reweighted by `1/p_e`. Cuts of value up to `τ` are preserved
//! exactly; larger cuts are preserved to `(1±ε)` w.h.p. because every
//! sampled edge has strength above the threshold.
//!
//! With the default threshold `τ = c·ln n/ε²` the exact side is
//! precisely the set of edges the Benczúr–Karger rate would refuse to
//! subsample anyway, so the construction degrades gracefully to the
//! exact sketch on small graphs — the measured error is then 0, and
//! the zoo chart shows the crossover where sampling starts to bite.

use crate::edgelist::EdgeListSketch;
use crate::traits::{CutSketcher, SketchKind};
use dircut_graph::nagamochi::skeleton_strength_labels;
use dircut_graph::DiGraph;
use rand::Rng;

/// Threshold-split sparsifier: exact below strength `τ`, sampled above.
#[derive(Debug, Clone, Copy)]
pub struct PartialSparsifier {
    /// Target relative error ε for the sampled (high-strength) part.
    pub epsilon: f64,
    /// Connectivity threshold `τ`; `None` uses `c·ln n/ε²`, below
    /// which the sampling probability would be 1 regardless.
    pub threshold: Option<f64>,
    /// Oversampling constant `c` in `p_e = c·ln n/(ε²·k_e)`.
    pub oversample: f64,
}

impl PartialSparsifier {
    /// Creates a partial sparsifier with the default constant (6) and
    /// automatic threshold.
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1`.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "ε must be in (0,1)");
        Self {
            epsilon,
            threshold: None,
            oversample: 6.0,
        }
    }

    /// The threshold in effect for an `n`-node graph.
    #[must_use]
    pub fn resolve_threshold(&self, n: usize) -> f64 {
        self.threshold.unwrap_or_else(|| {
            self.oversample * (n as f64).max(2.0).ln() / (self.epsilon * self.epsilon)
        })
    }

    /// Splits `g`'s edge count into (kept-exact, sampled) under the
    /// resolved threshold — the partial-sparsification headline number.
    #[must_use]
    pub fn split_counts(&self, g: &DiGraph) -> (usize, usize) {
        let tau = self.resolve_threshold(g.num_nodes());
        let labels = skeleton_strength_labels(g);
        let exact = labels.iter().filter(|&&l| f64::from(l) <= tau).count();
        (exact, labels.len() - exact)
    }
}

impl CutSketcher for PartialSparsifier {
    type Sketch = EdgeListSketch;

    fn kind(&self) -> SketchKind {
        SketchKind::ForAll
    }

    fn sketch<R: Rng>(&self, g: &DiGraph, rng: &mut R) -> EdgeListSketch {
        let n = g.num_nodes();
        let tau = self.resolve_threshold(n);
        let c = self.oversample * (n as f64).max(2.0).ln() / (self.epsilon * self.epsilon);
        let labels = skeleton_strength_labels(g);
        let mut kept = Vec::new();
        for (e, &label) in g.edges().iter().zip(labels.iter()) {
            let k_e = f64::from(label);
            if k_e <= tau {
                // Low-strength side: exact, no randomness consumed.
                kept.push((e.from.0, e.to.0, e.weight));
            } else {
                let p = (c / k_e).min(1.0);
                if p >= 1.0 || rng.gen_bool(p) {
                    kept.push((e.from.0, e.to.0, e.weight / p));
                }
            }
        }
        EdgeListSketch::new(n, kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::max_relative_cut_error;
    use dircut_graph::generators::random_balanced_digraph;
    use dircut_graph::NodeId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn dense_graph(n: usize, seed: u64) -> DiGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut g = DiGraph::new(n);
        for u in 0..n {
            for v in 0..n {
                if u != v && rng.gen_bool(0.8) {
                    g.add_edge(NodeId::new(u), NodeId::new(v), 1.0);
                }
            }
        }
        g
    }

    #[test]
    fn default_threshold_keeps_small_graphs_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = random_balanced_digraph(12, 0.8, 2.0, &mut rng);
        let sp = PartialSparsifier::new(0.25);
        let (exact, sampled) = sp.split_counts(&g);
        assert_eq!(sampled, 0, "n=12 strengths cannot exceed c·ln n/ε²");
        assert_eq!(exact, g.num_edges());
        let sk = sp.sketch(&g, &mut rng);
        assert_eq!(sk.num_edges(), g.num_edges());
        assert_eq!(max_relative_cut_error(&g, &sk), 0.0);
    }

    #[test]
    fn cuts_below_the_threshold_are_preserved_exactly() {
        // Force a low threshold: high-strength edges get sampled but
        // every cut made of threshold-or-weaker edges is untouched.
        let g = dense_graph(14, 1);
        let sp = PartialSparsifier {
            epsilon: 0.9,
            threshold: Some(2.0),
            oversample: 1.0,
        };
        let (exact, sampled) = sp.split_counts(&g);
        assert!(sampled > 0, "dense graph must have strength > 2 edges");
        assert!(exact < g.num_edges());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let sk = sp.sketch(&g, &mut rng);
        assert!(sk.num_edges() < g.num_edges());
        let err = max_relative_cut_error(&g, &sk);
        assert!(err < 1.5, "max relative error {err}");
    }

    #[test]
    fn explicit_infinite_threshold_is_the_exact_sketch() {
        let g = dense_graph(10, 3);
        let sp = PartialSparsifier {
            epsilon: 0.5,
            threshold: Some(f64::INFINITY),
            oversample: 6.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let sk = sp.sketch(&g, &mut rng);
        assert_eq!(sk.num_edges(), g.num_edges());
        assert_eq!(max_relative_cut_error(&g, &sk), 0.0);
    }

    #[test]
    fn exact_side_consumes_no_randomness() {
        // Two different RNGs must produce identical sketches when every
        // edge falls below the threshold.
        let mut rng_a = ChaCha8Rng::seed_from_u64(5);
        let mut rng_b = ChaCha8Rng::seed_from_u64(99);
        let g = random_balanced_digraph(10, 0.7, 1.0, &mut rng_a);
        let sp = PartialSparsifier::new(0.5);
        let a = sp.sketch(&g, &mut rng_a);
        let b = sp.sketch(&g, &mut rng_b);
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn reports_for_all_kind() {
        assert_eq!(PartialSparsifier::new(0.3).kind(), SketchKind::ForAll);
    }
}
