//! Median-of-k success boosting.
//!
//! Footnotes 2 and 3 of the paper boost a sketch's 2/3 success
//! probability to 99/100 by running the sketching and recovery
//! algorithms `O(1)` times and taking the median; [`BoostedSketcher`]
//! is that construction, costing a constant factor in size.

use crate::traits::{CutOracle, CutSketch, CutSketcher, SketchKind};
use dircut_graph::{DiGraph, NodeSet};
use rand::Rng;

/// `k` independent sketches queried together by median.
#[derive(Debug, Clone)]
pub struct BoostedSketch<S> {
    replicas: Vec<S>,
}

impl<S: CutSketch> BoostedSketch<S> {
    /// Number of replicas.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }
}

impl<S: CutSketch> CutOracle for BoostedSketch<S> {
    fn universe(&self) -> usize {
        self.replicas[0].universe()
    }

    fn cut_out_estimate(&self, s: &NodeSet) -> f64 {
        let mut vals: Vec<f64> = self
            .replicas
            .iter()
            .map(|r| r.cut_out_estimate(s))
            .collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("NaN estimate"));
        let k = vals.len();
        if k % 2 == 1 {
            vals[k / 2]
        } else {
            (vals[k / 2 - 1] + vals[k / 2]) / 2.0
        }
    }
}

impl<S: CutSketch> CutSketch for BoostedSketch<S> {
    fn size_bits(&self) -> usize {
        self.replicas.iter().map(CutSketch::size_bits).sum()
    }
}

/// Wraps any sketcher, producing `k` independent replicas.
#[derive(Debug, Clone, Copy)]
pub struct BoostedSketcher<A> {
    inner: A,
    k: usize,
}

impl<A: CutSketcher> BoostedSketcher<A> {
    /// Boosts `inner` with `k` replicas (odd `k` recommended).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(inner: A, k: usize) -> Self {
        assert!(k >= 1, "need at least one replica");
        Self { inner, k }
    }
}

impl<A: CutSketcher> CutSketcher for BoostedSketcher<A> {
    type Sketch = BoostedSketch<A::Sketch>;

    fn kind(&self) -> SketchKind {
        self.inner.kind()
    }

    fn sketch<R: Rng>(&self, g: &DiGraph, rng: &mut R) -> Self::Sketch {
        BoostedSketch {
            replicas: (0..self.k).map(|_| self.inner.sketch(g, rng)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balanced::BalancedForEachSketcher;
    use dircut_graph::generators::random_balanced_digraph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn boosting_multiplies_size_by_k() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = random_balanced_digraph(10, 0.7, 2.0, &mut rng);
        let base = BalancedForEachSketcher::new(0.3, 2.0);
        let boosted = BoostedSketcher::new(base, 5).sketch(&g, &mut rng);
        assert_eq!(boosted.replicas(), 5);
        // Sizes are random per replica but each ≥ the degree table.
        assert!(boosted.size_bits() >= 5 * (64 + 10 * 64));
    }

    #[test]
    fn boosting_tightens_per_cut_error() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = random_balanced_digraph(14, 0.8, 2.0, &mut rng);
        let base = BalancedForEachSketcher::new(0.35, 2.0);
        let s = NodeSet::from_indices(14, 0..7);
        let truth = g.cut_out(&s);
        let trials = 40;
        let mut base_ok = 0;
        let mut boosted_ok = 0;
        for _ in 0..trials {
            let est = base.sketch(&g, &mut rng).cut_out_estimate(&s);
            if (est - truth).abs() <= 0.35 * truth {
                base_ok += 1;
            }
            let est = BoostedSketcher::new(base, 7)
                .sketch(&g, &mut rng)
                .cut_out_estimate(&s);
            if (est - truth).abs() <= 0.35 * truth {
                boosted_ok += 1;
            }
        }
        assert!(
            boosted_ok >= base_ok,
            "boosted {boosted_ok} < base {base_ok}"
        );
        assert!(
            boosted_ok * 10 >= trials * 9,
            "boosted only {boosted_ok}/{trials}"
        );
    }

    #[test]
    fn kind_passes_through() {
        let base = BalancedForEachSketcher::new(0.3, 2.0);
        assert_eq!(BoostedSketcher::new(base, 3).kind(), SketchKind::ForEach);
    }
}
