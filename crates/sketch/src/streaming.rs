//! Streaming cut sketches — the database-community setting the paper's
//! introduction motivates (\[AGM12\], \[McG14\]): graphs arrive as edge
//! streams, memory is bounded, and cut structure must survive.
//!
//! * [`StreamingSparsifier`] — insert-only streams: keep each arriving
//!   edge with the current rate `p` (weight `w/p`); whenever the store
//!   exceeds its budget, halve `p` and subsample the store. The final
//!   store is distributed like an offline uniform sample at the final
//!   rate, so cuts are preserved the same way (Karger), with memory
//!   never exceeding the budget.
//! * [`TurnstileLinearSketch`] — fully dynamic (insert **and delete**)
//!   streams: the linear sketch `ΠB` is updated additively per edge,
//!   with the Rademacher sign derived *deterministically from the edge
//!   identity*, so a deletion exactly cancels the earlier insertion —
//!   the \[AGM12\] mechanism. Memory is `Θ(n/ε²)` words regardless of
//!   stream length.

use crate::edgelist::EdgeListSketch;
use crate::linear::LinearCutSketch;
use crate::serialize::SketchEncoder;
use crate::traits::{CutOracle, CutSketch};
use dircut_graph::{NodeId, NodeSet};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hash::{Hash, Hasher};

/// An insert-only streaming sparsifier with bounded edge memory.
#[derive(Debug, Clone)]
pub struct StreamingSparsifier {
    n: usize,
    budget: usize,
    p: f64,
    store: Vec<(u32, u32, f64)>,
    rng: ChaCha8Rng,
    inserted: u64,
    halvings: u32,
}

impl StreamingSparsifier {
    /// A sparsifier over `n` nodes storing at most `budget` edges.
    ///
    /// # Panics
    /// Panics if `budget == 0`.
    #[must_use]
    pub fn new(n: usize, budget: usize, seed: u64) -> Self {
        assert!(budget >= 1, "budget must be ≥ 1");
        Self {
            n,
            budget,
            p: 1.0,
            store: Vec::with_capacity(budget + 1),
            rng: ChaCha8Rng::seed_from_u64(seed),
            inserted: 0,
            halvings: 0,
        }
    }

    /// Processes one stream insertion.
    pub fn insert(&mut self, from: NodeId, to: NodeId, weight: f64) {
        assert!(
            from.index() < self.n && to.index() < self.n,
            "endpoint out of range"
        );
        self.inserted += 1;
        if self.p >= 1.0 || self.rng.gen_bool(self.p) {
            self.store.push((from.0, to.0, weight / self.p));
        }
        while self.store.len() > self.budget {
            // Halve the rate; every stored edge survives w.p. 1/2 with
            // doubled stored weight, preserving unbiasedness.
            self.p /= 2.0;
            self.halvings += 1;
            let mut kept = Vec::with_capacity(self.store.len() / 2 + 1);
            for &(u, v, w) in &self.store {
                if self.rng.gen_bool(0.5) {
                    kept.push((u, v, w * 2.0));
                }
            }
            self.store = kept;
        }
    }

    /// The current sampling rate.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.p
    }

    /// Edges currently stored (≤ budget).
    #[must_use]
    pub fn stored_edges(&self) -> usize {
        self.store.len()
    }

    /// Total stream insertions processed.
    #[must_use]
    pub fn stream_length(&self) -> u64 {
        self.inserted
    }

    /// Number of rate halvings so far.
    #[must_use]
    pub fn halvings(&self) -> u32 {
        self.halvings
    }

    /// Snapshots the store as a queryable sketch.
    #[must_use]
    pub fn snapshot(&self) -> EdgeListSketch {
        EdgeListSketch::new(self.n, self.store.clone())
    }
}

/// A fully dynamic (turnstile) linear cut sketch: `Θ(k·n)` memory,
/// supports deletions by exact cancellation.
#[derive(Debug, Clone)]
pub struct TurnstileLinearSketch {
    m: Vec<f64>,
    rows: usize,
    n: usize,
    seed: u64,
    updates: u64,
}

impl TurnstileLinearSketch {
    /// A sketch with `rows` Rademacher rows over `n` nodes.
    ///
    /// # Panics
    /// Panics if `rows == 0`.
    #[must_use]
    pub fn new(n: usize, rows: usize, seed: u64) -> Self {
        assert!(rows >= 1, "need at least one row");
        Self {
            m: vec![0.0; rows * n],
            rows,
            n,
            seed,
            updates: 0,
        }
    }

    /// The deterministic per-(row, edge) sign — the same at insert and
    /// delete time, which is what makes cancellation exact.
    fn sign(&self, row: usize, u: u32, v: u32) -> f64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut h);
        row.hash(&mut h);
        (u.min(v), u.max(v)).hash(&mut h);
        if h.finish() & 1 == 0 {
            1.0
        } else {
            -1.0
        }
    }

    fn update(&mut self, from: NodeId, to: NodeId, weight: f64, direction: f64) {
        assert!(
            from.index() < self.n && to.index() < self.n,
            "endpoint out of range"
        );
        assert!(weight >= 0.0 && weight.is_finite(), "bad weight {weight}");
        self.updates += 1;
        let root = weight.sqrt() * direction;
        // Orient deterministically so insert and delete agree even if
        // the caller flips the endpoint order.
        let (a, b) = if from.0 <= to.0 {
            (from, to)
        } else {
            (to, from)
        };
        for r in 0..self.rows {
            let sigma = self.sign(r, a.0, b.0) * root;
            self.m[r * self.n + a.index()] += sigma;
            self.m[r * self.n + b.index()] -= sigma;
        }
    }

    /// Processes an edge insertion.
    pub fn insert(&mut self, from: NodeId, to: NodeId, weight: f64) {
        self.update(from, to, weight, 1.0);
    }

    /// Processes an edge deletion (must match an earlier insertion's
    /// endpoints and weight, the standard turnstile promise).
    pub fn delete(&mut self, from: NodeId, to: NodeId, weight: f64) {
        self.update(from, to, weight, -1.0);
    }

    /// Stream updates processed so far.
    #[must_use]
    pub fn stream_length(&self) -> u64 {
        self.updates
    }

    /// Estimates the *undirected* cut weight of the net (current)
    /// graph.
    #[must_use]
    pub fn undirected_cut_estimate(&self, s: &NodeSet) -> f64 {
        assert_eq!(s.universe(), self.n, "node-set universe mismatch");
        let mut total = 0.0;
        for row in self.m.chunks_exact(self.n) {
            let mut y = 0.0;
            for (v, &coef) in row.iter().enumerate() {
                let x = if s.contains(NodeId::new(v)) {
                    1.0
                } else {
                    -1.0
                };
                y += coef * x;
            }
            total += y * y;
        }
        total / (4.0 * self.rows as f64)
    }

    /// Merges with another turnstile sketch built with the **same seed
    /// and shape** (e.g. two stream shards sketched independently).
    ///
    /// # Panics
    /// Panics on shape or seed mismatch (different seeds give different
    /// projections; adding them would be meaningless).
    #[must_use]
    pub fn merge(&self, other: &Self) -> Self {
        assert_eq!(self.rows, other.rows, "row-count mismatch");
        assert_eq!(self.n, other.n, "node-count mismatch");
        assert_eq!(self.seed, other.seed, "seed mismatch: projections differ");
        let m = self.m.iter().zip(&other.m).map(|(a, b)| a + b).collect();
        Self {
            m,
            rows: self.rows,
            n: self.n,
            seed: self.seed,
            updates: self.updates + other.updates,
        }
    }
}

impl CutOracle for TurnstileLinearSketch {
    fn universe(&self) -> usize {
        self.n
    }

    fn cut_out_estimate(&self, s: &NodeSet) -> f64 {
        self.undirected_cut_estimate(s) / 2.0
    }
}

impl CutSketch for TurnstileLinearSketch {
    fn size_bits(&self) -> usize {
        let mut enc = SketchEncoder::new();
        enc.put_bits(self.rows as u64, 32);
        enc.put_bits(self.n as u64, 32);
        enc.put_bits(self.seed, 64);
        let (_, header) = enc.finish();
        header + self.m.len() * 64
    }
}

/// Convenience: streams a static graph's edges into a turnstile
/// sketch, **one insertion per unordered pair** (pair weights are
/// coalesced first). The turnstile sign is a function of the edge
/// *identity*, so inserting the same pair twice adds coherently —
/// multiplicity must therefore be carried in the weight, which this
/// helper does; deletions must mirror insertions likewise.
#[must_use]
pub fn sketch_stream_of(
    g: &dircut_graph::DiGraph,
    rows: usize,
    seed: u64,
) -> TurnstileLinearSketch {
    use std::collections::HashMap;
    let mut pair: HashMap<(u32, u32), f64> = HashMap::new();
    for e in g.edges() {
        *pair
            .entry((e.from.0.min(e.to.0), e.from.0.max(e.to.0)))
            .or_insert(0.0) += e.weight;
    }
    let mut pairs: Vec<_> = pair.into_iter().collect();
    pairs.sort_by_key(|(k, _)| *k);
    let mut sk = TurnstileLinearSketch::new(g.num_nodes(), rows, seed);
    for ((u, v), w) in pairs {
        sk.insert(NodeId::new(u as usize), NodeId::new(v as usize), w);
    }
    sk
}

/// Ensures the two linear-sketch types expose the same estimator
/// (compile-time interchangeability witness for downstream code).
#[must_use]
pub fn same_estimate(a: &LinearCutSketch, b: &TurnstileLinearSketch, s: &NodeSet) -> (f64, f64) {
    (a.undirected_cut_estimate(s), b.undirected_cut_estimate(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircut_graph::DiGraph;

    fn symmetric_graph(n: usize, seed: u64) -> DiGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut g = DiGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.5) {
                    let w = rng.gen_range(0.5..2.0);
                    g.add_edge(NodeId::new(u), NodeId::new(v), w);
                    g.add_edge(NodeId::new(v), NodeId::new(u), w);
                }
            }
        }
        g
    }

    #[test]
    fn sparsifier_never_exceeds_budget() {
        let g = symmetric_graph(30, 0);
        let mut sp = StreamingSparsifier::new(30, 50, 1);
        for e in g.edges() {
            sp.insert(e.from, e.to, e.weight);
            assert!(sp.stored_edges() <= 50);
        }
        assert_eq!(sp.stream_length(), g.num_edges() as u64);
        assert!(sp.halvings() >= 1, "budget never pressured");
    }

    #[test]
    fn sparsifier_estimates_are_unbiased() {
        let g = symmetric_graph(16, 2);
        let s = NodeSet::from_indices(16, 0..8);
        let truth = g.cut_out(&s);
        let reps = 400;
        let mean: f64 = (0..reps)
            .map(|seed| {
                let mut sp = StreamingSparsifier::new(16, 40, seed);
                for e in g.edges() {
                    sp.insert(e.from, e.to, e.weight);
                }
                sp.snapshot().cut_out_estimate(&s)
            })
            .sum::<f64>()
            / reps as f64;
        assert!(
            (mean - truth).abs() < 0.1 * truth,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn sparsifier_with_roomy_budget_is_exact() {
        let g = symmetric_graph(12, 3);
        let mut sp = StreamingSparsifier::new(12, g.num_edges() + 10, 4);
        for e in g.edges() {
            sp.insert(e.from, e.to, e.weight);
        }
        assert_eq!(sp.rate(), 1.0);
        let s = NodeSet::from_indices(12, [0, 2, 4, 6]);
        assert!((sp.snapshot().cut_out_estimate(&s) - g.cut_out(&s)).abs() < 1e-9);
    }

    #[test]
    fn turnstile_deletion_cancels_exactly() {
        let mut sk = TurnstileLinearSketch::new(8, 16, 7);
        sk.insert(NodeId::new(0), NodeId::new(1), 2.0);
        sk.insert(NodeId::new(2), NodeId::new(3), 1.5);
        sk.insert(NodeId::new(0), NodeId::new(1), 2.0); // parallel copy
        sk.delete(NodeId::new(0), NodeId::new(1), 2.0);
        sk.delete(NodeId::new(2), NodeId::new(3), 1.5);
        // Net graph: single (0,1) edge of weight 2.
        let s = NodeSet::from_indices(8, [0]);
        assert!((sk.undirected_cut_estimate(&s) - 2.0).abs() < 1e-9);
        // Deleting the last edge zeroes the sketch entirely.
        sk.delete(NodeId::new(1), NodeId::new(0), 2.0); // flipped endpoints on purpose
        assert!(sk.undirected_cut_estimate(&s).abs() < 1e-18);
    }

    #[test]
    fn turnstile_concentrates_like_offline_linear_sketch() {
        let g = symmetric_graph(14, 5);
        let s = NodeSet::from_indices(14, 0..7);
        let (out, into) = g.cut_both(&s);
        let truth = out + into;
        let trials = 60u64;
        let within = (0..trials)
            .filter(|&seed| {
                let sk = sketch_stream_of(&g, 128, seed);
                (sk.undirected_cut_estimate(&s) - truth).abs() <= 0.3 * truth
            })
            .count();
        assert!(
            within as u64 * 3 >= trials * 2,
            "only {within}/{trials} within (1±0.3)"
        );
    }

    #[test]
    fn turnstile_shards_merge() {
        let g = symmetric_graph(12, 8);
        let seed = 11;
        let mut shard_a = TurnstileLinearSketch::new(12, 64, seed);
        let mut shard_b = TurnstileLinearSketch::new(12, 64, seed);
        for (i, e) in g.edges().iter().enumerate() {
            if i % 2 == 0 {
                shard_a.insert(e.from, e.to, e.weight);
            } else {
                shard_b.insert(e.from, e.to, e.weight);
            }
        }
        let merged = shard_a.merge(&shard_b);
        let mut whole = TurnstileLinearSketch::new(12, 64, seed);
        for e in g.edges() {
            whole.insert(e.from, e.to, e.weight);
        }
        let s = NodeSet::from_indices(12, [1, 4, 9]);
        // Same seed ⇒ identical projections ⇒ identical sketches.
        assert!(
            (merged.undirected_cut_estimate(&s) - whole.undirected_cut_estimate(&s)).abs() < 1e-9
        );
        assert_eq!(merged.stream_length(), g.num_edges() as u64);
    }

    #[test]
    #[should_panic(expected = "seed mismatch")]
    fn merging_different_seeds_is_rejected() {
        let a = TurnstileLinearSketch::new(4, 8, 1);
        let b = TurnstileLinearSketch::new(4, 8, 2);
        let _ = a.merge(&b);
    }

    #[test]
    fn memory_is_independent_of_stream_length() {
        let mut sk = TurnstileLinearSketch::new(10, 32, 13);
        let bits_before = sk.size_bits();
        for i in 0..10_000u32 {
            let u = NodeId::new((i % 9) as usize);
            let v = NodeId::new(((i % 9) + 1) as usize);
            sk.insert(u, v, 1.0);
            sk.delete(u, v, 1.0);
        }
        assert_eq!(sk.size_bits(), bits_before);
        assert_eq!(sk.stream_length(), 20_000);
    }
}
