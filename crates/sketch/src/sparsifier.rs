//! The unified sparsifier pipeline: one trait, one closed sketch
//! enum, one name-keyed registry.
//!
//! Historically every sketcher carried its own size/error plumbing and
//! the experiments enumerated them by hand. This module makes the
//! construction step first-class:
//!
//! * [`Sparsified`] — what a constructed sketch owes the pipeline on
//!   top of [`CutSketch`]: a billed [`wire_bits`](Sparsified::wire_bits)
//!   and a retained-edge count.
//! * [`Sparsifier`] — construct a [`Sparsified`] sketch from a graph.
//!   Every [`CutSketcher`] whose sketch is [`Sparsified`] gets the impl
//!   for free via a blanket delegation, so `construct` is *the same
//!   call* as `sketch` — pre-existing sketchers are bit-identical
//!   through the new trait by construction.
//! * [`SparsifierSpec`] — a `Copy` value type naming a sparsifier with
//!   its parameters, mirroring `OracleSpec` in `dircut-core`: specs
//!   travel through reductions, registries, CLIs and JSON rows where a
//!   generic `S: CutSketcher` cannot. A spec *is* a [`CutSketcher`]
//!   producing the closed [`AnySketch`] enum, so the Thm 1.1/1.2 game
//!   reductions run against every registry entry unchanged.
//! * [`registry`] / [`SparsifierSpec::by_name`] — the zoo: every
//!   shipped sparsifier at given `(ε, β)`, addressable by stable name.

use crate::balanced::{BalancedForAllSketcher, BalancedForEachSketcher, DegreeSampleSketch};
use crate::cutbalance::CutBalanceSketcher;
use crate::decomposed::{DecomposedForEachSketcher, DecomposedSketch};
use crate::edgelist::EdgeListSketch;
use crate::linear::{LinearCutSketch, LinearSketcher};
use crate::partial::PartialSparsifier;
use crate::sampling::{StrengthSketcher, UniformSketcher};
use crate::streaming::StreamingSparsifier;
use crate::traits::{CutOracle, CutSketch, CutSketcher, SketchKind};
use dircut_graph::{DiGraph, NodeSet};
use rand::Rng;

/// What a constructed sparsifier owes the pipeline beyond answering
/// cut queries: honest size accounting.
pub trait Sparsified: CutSketch {
    /// The billed wire size in bits — what a one-round protocol ships.
    /// Defaults to [`CutSketch::size_bits`], which every sketch in this
    /// crate already equates with its serialized length.
    fn wire_bits(&self) -> usize {
        self.size_bits()
    }

    /// Number of retained (stored) edges. Sketches that store a dense
    /// transform instead of edges report their stored-entry count.
    fn retained_edges(&self) -> usize;
}

impl Sparsified for EdgeListSketch {
    fn retained_edges(&self) -> usize {
        self.num_edges()
    }
}

impl Sparsified for DegreeSampleSketch {
    fn retained_edges(&self) -> usize {
        self.num_sampled_edges()
    }
}

impl Sparsified for DecomposedSketch {
    fn retained_edges(&self) -> usize {
        self.num_cross_edges() + self.num_sampled_edges()
    }
}

impl Sparsified for LinearCutSketch {
    /// A linear sketch stores no edges; its `k×n` matrix entries are
    /// the retained quantity.
    fn retained_edges(&self) -> usize {
        self.rows() * self.num_nodes()
    }
}

/// Constructs a [`Sparsified`] cut sketch from a graph.
///
/// This is the pipeline-facing face of [`CutSketcher`]; the blanket
/// impl below delegates `construct` to `sketch`, so the two entry
/// points are bit-identical for every existing sketcher.
pub trait Sparsifier {
    /// The constructed sketch type.
    type Output: Sparsified;

    /// Which guarantee the construction targets.
    fn kind(&self) -> SketchKind;

    /// Builds the sparsifier for `g`, drawing randomness from `rng`.
    fn construct<R: Rng>(&self, g: &DiGraph, rng: &mut R) -> Self::Output;
}

impl<S> Sparsifier for S
where
    S: CutSketcher,
    S::Sketch: Sparsified,
{
    type Output = S::Sketch;

    fn kind(&self) -> SketchKind {
        CutSketcher::kind(self)
    }

    fn construct<R: Rng>(&self, g: &DiGraph, rng: &mut R) -> Self::Output {
        self.sketch(g, rng)
    }
}

/// A closed enum over every sketch shape the registry produces, so
/// heterogeneous sweeps (and reduction artifacts) stay `Send + Clone`
/// without boxing.
#[derive(Debug, Clone)]
pub enum AnySketch {
    /// Reweighted edge list (exact, sampling, streaming snapshots).
    EdgeList(EdgeListSketch),
    /// Exact out-degrees plus a `1/ε`-rate edge sample.
    DegreeSample(DegreeSampleSketch),
    /// Two-level strength decomposition.
    Decomposed(DecomposedSketch),
    /// Dense `ΠB` linear sketch.
    Linear(LinearCutSketch),
}

impl CutOracle for AnySketch {
    fn universe(&self) -> usize {
        match self {
            Self::EdgeList(sk) => sk.universe(),
            Self::DegreeSample(sk) => sk.universe(),
            Self::Decomposed(sk) => sk.universe(),
            Self::Linear(sk) => sk.universe(),
        }
    }

    fn cut_out_estimate(&self, s: &NodeSet) -> f64 {
        match self {
            Self::EdgeList(sk) => sk.cut_out_estimate(s),
            Self::DegreeSample(sk) => sk.cut_out_estimate(s),
            Self::Decomposed(sk) => sk.cut_out_estimate(s),
            Self::Linear(sk) => sk.cut_out_estimate(s),
        }
    }

    fn cut_out_estimates(&self, sets: &[NodeSet]) -> Vec<f64> {
        // Delegate so variants with a batched override (the edge-list
        // kernels) keep their bit-identical fast path.
        match self {
            Self::EdgeList(sk) => sk.cut_out_estimates(sets),
            Self::DegreeSample(sk) => sk.cut_out_estimates(sets),
            Self::Decomposed(sk) => sk.cut_out_estimates(sets),
            Self::Linear(sk) => sk.cut_out_estimates(sets),
        }
    }
}

impl CutSketch for AnySketch {
    fn size_bits(&self) -> usize {
        match self {
            Self::EdgeList(sk) => sk.size_bits(),
            Self::DegreeSample(sk) => sk.size_bits(),
            Self::Decomposed(sk) => sk.size_bits(),
            Self::Linear(sk) => sk.size_bits(),
        }
    }
}

impl Sparsified for AnySketch {
    fn retained_edges(&self) -> usize {
        match self {
            Self::EdgeList(sk) => sk.retained_edges(),
            Self::DegreeSample(sk) => sk.retained_edges(),
            Self::Decomposed(sk) => sk.retained_edges(),
            Self::Linear(sk) => sk.retained_edges(),
        }
    }
}

/// Default edge budget for the registry's streaming entry.
pub const DEFAULT_STREAM_BUDGET: usize = 256;

/// A value-typed sparsifier description — the `OracleSpec` of the
/// upper-bound side. Constructing through a spec delegates to the
/// concrete sketcher with the same parameters, drawing the same
/// randomness in the same order, so spec-built sketches are
/// bit-identical to direct construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SparsifierSpec {
    /// The whole graph as an edge list (the baseline every curve is
    /// normalized against).
    Exact,
    /// Karger uniform sampling at the global min-cut rate.
    Uniform {
        /// Target relative error ε.
        epsilon: f64,
    },
    /// Benczúr–Karger sampling by Nagamochi–Ibaraki strength labels.
    Strength {
        /// Target relative error ε.
        epsilon: f64,
    },
    /// β-balanced for-all sampling at the symmetrized min-cut rate.
    BalancedForAll {
        /// Target relative error ε.
        epsilon: f64,
        /// Balance bound β.
        beta: f64,
    },
    /// β-balanced for-each degree-plus-sample sketch (`1/ε` rate).
    BalancedForEach {
        /// Target relative error ε.
        epsilon: f64,
        /// Balance bound β.
        beta: f64,
    },
    /// Two-level strength-decomposition for-each sketch.
    TwoLevel {
        /// Target relative error ε.
        epsilon: f64,
        /// Balance bound β.
        beta: f64,
    },
    /// Dense Rademacher linear sketch (`⌈8/ε²⌉` rows).
    Linear {
        /// Target relative error ε.
        epsilon: f64,
    },
    /// Insert-only streaming sparsifier snapshot (rate-halving store).
    Streaming {
        /// Maximum stored edges.
        budget: usize,
    },
    /// Cut-balance-scaled strength sampling (arXiv 2006.01975).
    CutBalance {
        /// Target relative error ε.
        epsilon: f64,
        /// Balance bound β.
        beta: f64,
    },
    /// Partial sparsification: exact below a strength threshold,
    /// sampled above (arXiv 2111.08959).
    Partial {
        /// Target relative error ε for the sampled part.
        epsilon: f64,
    },
}

impl SparsifierSpec {
    /// The spec's stable registry name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Exact => "exact",
            Self::Uniform { .. } => "uniform",
            Self::Strength { .. } => "strength",
            Self::BalancedForAll { .. } => "balanced-forall",
            Self::BalancedForEach { .. } => "balanced-foreach",
            Self::TwoLevel { .. } => "two-level",
            Self::Linear { .. } => "linear",
            Self::Streaming { .. } => "streaming",
            Self::CutBalance { .. } => "cut-balance",
            Self::Partial { .. } => "partial",
        }
    }

    /// The target relative error, where the construction has one.
    /// `Exact` and `Streaming` (whose rate is budget-driven) report
    /// `None`.
    #[must_use]
    pub fn epsilon(&self) -> Option<f64> {
        match *self {
            Self::Exact | Self::Streaming { .. } => None,
            Self::Uniform { epsilon }
            | Self::Strength { epsilon }
            | Self::BalancedForAll { epsilon, .. }
            | Self::BalancedForEach { epsilon, .. }
            | Self::TwoLevel { epsilon, .. }
            | Self::Linear { epsilon }
            | Self::CutBalance { epsilon, .. }
            | Self::Partial { epsilon } => Some(epsilon),
        }
    }

    /// Resolves a registry name to a spec at the given parameters.
    /// Returns `None` for unknown names.
    #[must_use]
    pub fn by_name(name: &str, epsilon: f64, beta: f64) -> Option<Self> {
        registry(epsilon, beta)
            .into_iter()
            .find(|spec| spec.name() == name)
    }
}

impl CutSketcher for SparsifierSpec {
    type Sketch = AnySketch;

    fn kind(&self) -> SketchKind {
        match self {
            Self::BalancedForEach { .. } | Self::TwoLevel { .. } | Self::Linear { .. } => {
                SketchKind::ForEach
            }
            Self::Exact
            | Self::Uniform { .. }
            | Self::Strength { .. }
            | Self::BalancedForAll { .. }
            | Self::Streaming { .. }
            | Self::CutBalance { .. }
            | Self::Partial { .. } => SketchKind::ForAll,
        }
    }

    fn sketch<R: Rng>(&self, g: &DiGraph, rng: &mut R) -> AnySketch {
        match *self {
            Self::Exact => AnySketch::EdgeList(EdgeListSketch::from_graph(g)),
            Self::Uniform { epsilon } => {
                AnySketch::EdgeList(UniformSketcher::new(epsilon).sketch(g, rng))
            }
            Self::Strength { epsilon } => {
                AnySketch::EdgeList(StrengthSketcher::new(epsilon).sketch(g, rng))
            }
            Self::BalancedForAll { epsilon, beta } => {
                AnySketch::EdgeList(BalancedForAllSketcher::new(epsilon, beta).sketch(g, rng))
            }
            Self::BalancedForEach { epsilon, beta } => {
                AnySketch::DegreeSample(BalancedForEachSketcher::new(epsilon, beta).sketch(g, rng))
            }
            Self::TwoLevel { epsilon, beta } => {
                AnySketch::Decomposed(DecomposedForEachSketcher::new(epsilon, beta).sketch(g, rng))
            }
            Self::Linear { epsilon } => {
                AnySketch::Linear(LinearSketcher::new(epsilon).sketch(g, rng))
            }
            Self::Streaming { budget } => {
                // The stream's internal RNG is seeded from the sample
                // stream, in draw-seed position — the `OracleSpec`
                // discipline for constructions that own their RNG.
                let seed: u64 = rng.gen();
                let mut stream = StreamingSparsifier::new(g.num_nodes(), budget, seed);
                for e in g.edges() {
                    stream.insert(e.from, e.to, e.weight);
                }
                AnySketch::EdgeList(stream.snapshot())
            }
            Self::CutBalance { epsilon, beta } => {
                AnySketch::EdgeList(CutBalanceSketcher::new(epsilon, beta).sketch(g, rng))
            }
            Self::Partial { epsilon } => {
                AnySketch::EdgeList(PartialSparsifier::new(epsilon).sketch(g, rng))
            }
        }
    }
}

/// Every shipped sparsifier at the given `(ε, β)`, in fixed zoo order.
#[must_use]
pub fn registry(epsilon: f64, beta: f64) -> Vec<SparsifierSpec> {
    vec![
        SparsifierSpec::Exact,
        SparsifierSpec::Uniform { epsilon },
        SparsifierSpec::Strength { epsilon },
        SparsifierSpec::BalancedForAll { epsilon, beta },
        SparsifierSpec::BalancedForEach { epsilon, beta },
        SparsifierSpec::TwoLevel { epsilon, beta },
        SparsifierSpec::Linear { epsilon },
        SparsifierSpec::Streaming {
            budget: DEFAULT_STREAM_BUDGET,
        },
        SparsifierSpec::CutBalance { epsilon, beta },
        SparsifierSpec::Partial { epsilon },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircut_graph::generators::random_balanced_digraph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph(seed: u64) -> DiGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        random_balanced_digraph(12, 0.7, 2.0, &mut rng)
    }

    fn estimate_bits(sk: &AnySketch, n: usize) -> Vec<u64> {
        (1u32..(1 << (n - 1)))
            .step_by(7)
            .map(|mask| {
                let s = NodeSet::from_indices(
                    n,
                    (0..n - 1).filter(|i| mask >> i & 1 == 1).map(|i| i + 1),
                );
                sk.cut_out_estimate(&s).to_bits()
            })
            .collect()
    }

    #[test]
    fn construct_is_bit_identical_to_sketch_for_every_legacy_sketcher() {
        // The blanket impl must route through the same code path: same
        // seed ⇒ same sketch bits, billed size, and retained count.
        let g = graph(0);
        let sketcher = BalancedForEachSketcher::new(0.3, 2.0);
        let mut rng_a = ChaCha8Rng::seed_from_u64(7);
        let mut rng_b = ChaCha8Rng::seed_from_u64(7);
        let via_sketch = sketcher.sketch(&g, &mut rng_a);
        let via_construct = Sparsifier::construct(&sketcher, &g, &mut rng_b);
        assert_eq!(via_sketch, via_construct);
        assert_eq!(via_sketch.size_bits(), via_construct.wire_bits());
        assert_eq!(
            via_sketch.num_sampled_edges(),
            via_construct.retained_edges()
        );
    }

    #[test]
    fn specs_are_bit_identical_to_their_concrete_sketchers() {
        let g = graph(1);
        let n = g.num_nodes();
        let cases: Vec<(SparsifierSpec, Box<dyn Fn(&mut ChaCha8Rng) -> AnySketch>)> = vec![
            (
                SparsifierSpec::Uniform { epsilon: 0.4 },
                Box::new(|r| AnySketch::EdgeList(UniformSketcher::new(0.4).sketch(&graph(1), r))),
            ),
            (
                SparsifierSpec::Strength { epsilon: 0.4 },
                Box::new(|r| AnySketch::EdgeList(StrengthSketcher::new(0.4).sketch(&graph(1), r))),
            ),
            (
                SparsifierSpec::BalancedForAll {
                    epsilon: 0.4,
                    beta: 2.0,
                },
                Box::new(|r| {
                    AnySketch::EdgeList(BalancedForAllSketcher::new(0.4, 2.0).sketch(&graph(1), r))
                }),
            ),
            (
                SparsifierSpec::BalancedForEach {
                    epsilon: 0.4,
                    beta: 2.0,
                },
                Box::new(|r| {
                    AnySketch::DegreeSample(
                        BalancedForEachSketcher::new(0.4, 2.0).sketch(&graph(1), r),
                    )
                }),
            ),
            (
                SparsifierSpec::TwoLevel {
                    epsilon: 0.4,
                    beta: 2.0,
                },
                Box::new(|r| {
                    AnySketch::Decomposed(
                        DecomposedForEachSketcher::new(0.4, 2.0).sketch(&graph(1), r),
                    )
                }),
            ),
            (
                SparsifierSpec::Linear { epsilon: 0.4 },
                Box::new(|r| AnySketch::Linear(LinearSketcher::new(0.4).sketch(&graph(1), r))),
            ),
        ];
        for (spec, direct) in cases {
            let mut rng_a = ChaCha8Rng::seed_from_u64(11);
            let mut rng_b = ChaCha8Rng::seed_from_u64(11);
            let via_spec = spec.sketch(&g, &mut rng_a);
            let via_direct = direct(&mut rng_b);
            assert_eq!(
                estimate_bits(&via_spec, n),
                estimate_bits(&via_direct, n),
                "{}: spec and concrete sketcher disagree",
                spec.name()
            );
            assert_eq!(
                via_spec.size_bits(),
                via_direct.size_bits(),
                "{}",
                spec.name()
            );
            assert_eq!(
                via_spec.retained_edges(),
                via_direct.retained_edges(),
                "{}",
                spec.name()
            );
        }
    }

    #[test]
    fn streaming_spec_matches_manual_stream_replay() {
        let g = graph(2);
        let spec = SparsifierSpec::Streaming { budget: 16 };
        let mut rng_a = ChaCha8Rng::seed_from_u64(3);
        let via_spec = spec.sketch(&g, &mut rng_a);
        let mut rng_b = ChaCha8Rng::seed_from_u64(3);
        let seed: u64 = rand::Rng::gen(&mut rng_b);
        let mut stream = StreamingSparsifier::new(g.num_nodes(), 16, seed);
        for e in g.edges() {
            stream.insert(e.from, e.to, e.weight);
        }
        let manual = AnySketch::EdgeList(stream.snapshot());
        assert_eq!(
            estimate_bits(&via_spec, g.num_nodes()),
            estimate_bits(&manual, g.num_nodes())
        );
        assert!(via_spec.retained_edges() <= 16);
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let specs = registry(0.5, 2.0);
        assert_eq!(specs.len(), 10);
        let mut names: Vec<&str> = specs.iter().map(SparsifierSpec::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len(), "duplicate registry names");
        for spec in &specs {
            assert_eq!(SparsifierSpec::by_name(spec.name(), 0.5, 2.0), Some(*spec));
        }
        assert_eq!(SparsifierSpec::by_name("no-such", 0.5, 2.0), None);
    }

    #[test]
    fn kinds_partition_the_registry() {
        let foreach: Vec<&str> = registry(0.5, 2.0)
            .iter()
            .filter(|s| CutSketcher::kind(*s) == SketchKind::ForEach)
            .map(SparsifierSpec::name)
            .collect();
        assert_eq!(foreach, ["balanced-foreach", "two-level", "linear"]);
    }

    #[test]
    fn every_registry_entry_constructs_and_bills() {
        let g = graph(4);
        for spec in registry(0.5, 2.0) {
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            let sk = Sparsifier::construct(&spec, &g, &mut rng);
            assert!(sk.wire_bits() > 0, "{}", spec.name());
            assert_eq!(sk.universe(), g.num_nodes(), "{}", spec.name());
        }
    }

    #[test]
    fn exact_spec_reproduces_every_cut() {
        let g = graph(6);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let sk = SparsifierSpec::Exact.sketch(&g, &mut rng);
        assert_eq!(sk.retained_edges(), g.num_edges());
        let err = crate::sampling::max_relative_cut_error(&g, &sk);
        assert_eq!(err, 0.0);
    }
}
