//! Sampling-based for-all cut sparsifiers for undirected-style graphs.
//!
//! * [`UniformSketcher`] — Karger's uniform sampling: keep each edge
//!   with probability `p = min(1, c·ln n / (ε²·λ))` (λ = undirected
//!   global min-cut), reweight by `1/p`. All cuts are preserved within
//!   `(1±ε)` w.h.p. and the expected number of kept edges is `m·p`.
//! * [`StrengthSketcher`] — Benczúr–Karger-flavoured non-uniform
//!   sampling with connectivity estimates from Nagamochi–Ibaraki forest
//!   labels (the FHHP19 observation that NI indices are valid sampling
//!   scores): edge `e` with label `k_e` survives with probability
//!   `p_e = min(1, c·ln n/(ε²·k_e))` and weight `w_e/p_e`. This keeps
//!   `O(n·log n·ln n/ε²)` edges regardless of `m`.

use crate::edgelist::EdgeListSketch;
use crate::traits::{CutSketcher, SketchKind};
use dircut_graph::mincut::stoer_wagner;
use dircut_graph::nagamochi::skeleton_strength_labels;
use dircut_graph::DiGraph;
use rand::Rng;

/// Karger uniform-rate sparsifier.
#[derive(Debug, Clone, Copy)]
pub struct UniformSketcher {
    /// Target relative error ε.
    pub epsilon: f64,
    /// Oversampling constant `c` in `p = c·ln n/(ε²λ)`.
    pub oversample: f64,
}

impl UniformSketcher {
    /// Creates a sketcher with the default oversampling constant (3).
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1`.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "ε must be in (0,1)");
        Self {
            epsilon,
            oversample: 3.0,
        }
    }

    /// The sampling probability used for graph `g`.
    #[must_use]
    pub fn sample_probability(&self, g: &DiGraph) -> f64 {
        let n = g.num_nodes() as f64;
        let lambda = stoer_wagner(g).value;
        if lambda <= 0.0 {
            return 1.0;
        }
        (self.oversample * n.ln() / (self.epsilon * self.epsilon * lambda)).min(1.0)
    }
}

impl CutSketcher for UniformSketcher {
    type Sketch = EdgeListSketch;

    fn kind(&self) -> SketchKind {
        SketchKind::ForAll
    }

    fn sketch<R: Rng>(&self, g: &DiGraph, rng: &mut R) -> EdgeListSketch {
        let p = self.sample_probability(g);
        let mut kept = Vec::new();
        for e in g.edges() {
            if p >= 1.0 || rng.gen_bool(p) {
                kept.push((e.from.0, e.to.0, e.weight / p));
            }
        }
        EdgeListSketch::new(g.num_nodes(), kept)
    }
}

/// Benczúr–Karger-style sparsifier driven by Nagamochi–Ibaraki forest
/// labels as connectivity estimates.
///
/// Works on the *unweighted undirected skeleton* of the input graph
/// for the labels (weights only affect the stored values), so it is
/// intended for graphs whose weights are Θ(1), like the paper's
/// gadgets.
#[derive(Debug, Clone, Copy)]
pub struct StrengthSketcher {
    /// Target relative error ε.
    pub epsilon: f64,
    /// Oversampling constant.
    pub oversample: f64,
}

impl StrengthSketcher {
    /// Creates a sketcher with the default oversampling constant (6).
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1`.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "ε must be in (0,1)");
        Self {
            epsilon,
            oversample: 6.0,
        }
    }
}

impl CutSketcher for StrengthSketcher {
    type Sketch = EdgeListSketch;

    fn kind(&self) -> SketchKind {
        SketchKind::ForAll
    }

    fn sketch<R: Rng>(&self, g: &DiGraph, rng: &mut R) -> EdgeListSketch {
        let n = g.num_nodes();
        let labels = skeleton_strength_labels(g);
        let c = self.oversample * (n as f64).max(2.0).ln() / (self.epsilon * self.epsilon);
        let mut kept = Vec::new();
        for (e, &label) in g.edges().iter().zip(labels.iter()) {
            let p = (c / f64::from(label)).min(1.0);
            if p >= 1.0 || rng.gen_bool(p) {
                kept.push((e.from.0, e.to.0, e.weight / p));
            }
        }
        EdgeListSketch::new(n, kept)
    }
}

/// Convenience: maximum relative cut error of a sketch against the true
/// graph over all `2^{n−1}−1` cuts (small `n` only). Used by tests and
/// experiments to *measure* the for-all guarantee.
///
/// # Panics
/// Panics if `n > 20` or `n < 2`.
#[must_use]
pub fn max_relative_cut_error(g: &DiGraph, sketch: &impl crate::traits::CutOracle) -> f64 {
    use dircut_graph::NodeSet;
    let n = g.num_nodes();
    assert!(
        (2..=20).contains(&n),
        "exhaustive cut check needs 2 ≤ n ≤ 20"
    );
    // Enumerate cuts in blocks and answer each block through the
    // batched kernels: one edge pass covers 64 truth queries instead
    // of one, and oracle implementations with a batch override (e.g.
    // `EdgeListSketch`) get the same win on the estimate side. Blocks
    // keep peak memory at `BLOCK` node sets even for n = 20 (2^19
    // masks). The running max folds in mask order, so the result is
    // bit-identical to querying cut by cut.
    const BLOCK: u32 = 4096;
    let total: u32 = 1 << (n - 1);
    let mut worst: f64 = 0.0;
    let mut start = 1u32;
    while start < total {
        let end = total.min(start + BLOCK);
        let sets: Vec<NodeSet> = (start..end)
            .map(|mask| {
                NodeSet::from_indices(n, (0..n - 1).filter(|i| mask >> i & 1 == 1).map(|i| i + 1))
            })
            .collect();
        let truths = dircut_graph::cuteval::cut_out_batch(g, &sets);
        let ests = sketch.cut_out_estimates(&sets);
        for (&truth, &est) in truths.iter().zip(&ests) {
            if truth > 0.0 {
                worst = worst.max((est - truth).abs() / truth);
            } else {
                worst = worst.max(est.abs());
            }
        }
        start = end;
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{CutOracle, CutSketch};
    use dircut_graph::generators::random_balanced_digraph;
    use dircut_graph::NodeId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn dense_graph(n: usize, seed: u64) -> DiGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut g = DiGraph::new(n);
        for u in 0..n {
            for v in 0..n {
                if u != v && rng.gen_bool(0.8) {
                    g.add_edge(NodeId::new(u), NodeId::new(v), 1.0);
                }
            }
        }
        g
    }

    #[test]
    fn uniform_sketch_is_unbiased_per_cut() {
        let g = dense_graph(12, 0);
        let sketcher = UniformSketcher::new(0.3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let s = dircut_graph::NodeSet::from_indices(12, 0..6);
        let truth = g.cut_out(&s);
        let reps = 300;
        let mean: f64 = (0..reps)
            .map(|_| sketcher.sketch(&g, &mut rng).cut_out_estimate(&s))
            .sum::<f64>()
            / reps as f64;
        assert!(
            (mean - truth).abs() < 0.1 * truth,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn uniform_sketch_preserves_all_cuts_on_dense_graph() {
        let g = dense_graph(12, 2);
        let sketcher = UniformSketcher::new(0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let sk = sketcher.sketch(&g, &mut rng);
        let err = max_relative_cut_error(&g, &sk);
        assert!(err < 0.5, "max relative error {err}");
    }

    #[test]
    fn uniform_probability_shrinks_with_connectivity() {
        let sparse = dense_graph(12, 4);
        let mut heavy = sparse.clone();
        heavy.scale_weights(50.0);
        let sketcher = UniformSketcher::new(0.2);
        assert!(sketcher.sample_probability(&heavy) < sketcher.sample_probability(&sparse));
    }

    #[test]
    fn strength_sketch_preserves_cuts_and_shrinks_dense_graphs() {
        let g = dense_graph(14, 5);
        let sketcher = StrengthSketcher::new(0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let sk = sketcher.sketch(&g, &mut rng);
        let err = max_relative_cut_error(&g, &sk);
        assert!(err < 0.6, "max relative error {err}");
    }

    #[test]
    fn strength_sketch_size_beats_exact_on_very_dense_graphs() {
        // On a dense graph with strong connectivity and small ε the
        // sampled sketch must store fewer edges than the graph has.
        let n = 60;
        let mut g = DiGraph::new(n);
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    g.add_edge(NodeId::new(u), NodeId::new(v), 1.0);
                }
            }
        }
        let sketcher = StrengthSketcher {
            epsilon: 0.9,
            oversample: 0.5,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let sk = sketcher.sketch(&g, &mut rng);
        assert!(
            sk.num_edges() < g.num_edges() / 2,
            "kept {} of {} edges",
            sk.num_edges(),
            g.num_edges()
        );
        let exact = EdgeListSketch::from_graph(&g);
        assert!(sk.size_bits() < exact.size_bits() / 2);
    }

    #[test]
    fn sketchers_report_for_all_kind() {
        assert_eq!(UniformSketcher::new(0.1).kind(), SketchKind::ForAll);
        assert_eq!(StrengthSketcher::new(0.1).kind(), SketchKind::ForAll);
    }

    #[test]
    fn works_on_balanced_digraphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let g = random_balanced_digraph(10, 0.7, 4.0, &mut rng);
        let sk = UniformSketcher::new(0.6).sketch(&g, &mut rng);
        let err = max_relative_cut_error(&g, &sk);
        // Balanced digraphs have 1/β backward weights; uniform sampling
        // still concentrates, just with a worse constant.
        assert!(err < 1.0, "max relative error {err}");
    }
}
