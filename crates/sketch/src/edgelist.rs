//! The common payload of graph-shaped sketches: a reweighted edge
//! list. Exact sketches store every edge; sampling sketches store the
//! survivors with inflated weights.

use crate::serialize::{index_width, SketchEncoder};
use crate::traits::{CutOracle, CutSketch};
use dircut_graph::{DiGraph, NodeId, NodeSet};

/// A sketch that *is* a (re-weighted) graph: the sparsifier case.
#[derive(Debug, Clone)]
pub struct EdgeListSketch {
    n: usize,
    edges: Vec<(u32, u32, f64)>,
    size_bits: usize,
}

impl EdgeListSketch {
    /// Builds from an explicit edge list over `n` nodes.
    #[must_use]
    pub fn new(n: usize, edges: Vec<(u32, u32, f64)>) -> Self {
        let w = index_width(n);
        let mut enc = SketchEncoder::new();
        // Header: node count (64 bits is generous but honest).
        enc.put_bits(n as u64, 64);
        for &(u, v, weight) in &edges {
            enc.put_node(u as usize, w);
            enc.put_node(v as usize, w);
            enc.put_f64(weight);
        }
        let (_, size_bits) = enc.finish();
        Self {
            n,
            edges,
            size_bits,
        }
    }

    /// Builds from a graph, keeping every edge at its weight.
    #[must_use]
    pub fn from_graph(g: &DiGraph) -> Self {
        let edges = g
            .edges()
            .iter()
            .map(|e| (e.from.0, e.to.0, e.weight))
            .collect();
        Self::new(g.num_nodes(), edges)
    }

    /// Number of stored edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of nodes of the underlying graph.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Re-materializes the sketch as a graph (for algorithms that want
    /// to run graph computations on the sparsifier, e.g. min-cut
    /// enumeration in the distributed protocol).
    #[must_use]
    pub fn to_graph(&self) -> DiGraph {
        let mut g = DiGraph::with_edge_capacity(self.n, self.edges.len());
        for &(u, v, w) in &self.edges {
            g.add_edge(NodeId::new(u as usize), NodeId::new(v as usize), w);
        }
        g
    }
}

impl CutOracle for EdgeListSketch {
    fn cut_out_estimate(&self, s: &NodeSet) -> f64 {
        assert_eq!(s.universe(), self.n, "node-set universe mismatch");
        // `+0.0`-seeded fold in stored-edge order — the same
        // accumulation the batched kernel performs, so both entry
        // points return identical bits.
        let mut out = 0.0;
        for &(u, v, w) in &self.edges {
            if s.contains(NodeId::new(u as usize)) && !s.contains(NodeId::new(v as usize)) {
                out += w;
            }
        }
        out
    }

    fn cut_out_estimates(&self, sets: &[NodeSet]) -> Vec<f64> {
        for s in sets {
            assert_eq!(s.universe(), self.n, "node-set universe mismatch");
        }
        dircut_graph::cuteval::cut_both_batch_edges(
            self.n,
            &self.edges,
            sets,
            dircut_graph::parallel::default_threads(),
        )
        .into_iter()
        .map(|(out, _)| out)
        .collect()
    }
}

impl CutSketch for EdgeListSketch {
    fn size_bits(&self) -> usize {
        self.size_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_graph_is_exact() {
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId::new(0), NodeId::new(1), 2.0);
        g.add_edge(NodeId::new(1), NodeId::new(2), 3.0);
        g.add_edge(NodeId::new(2), NodeId::new(3), 5.0);
        g.add_edge(NodeId::new(3), NodeId::new(0), 7.0);
        let sk = EdgeListSketch::from_graph(&g);
        for mask in 1u32..15 {
            let s = NodeSet::from_indices(4, (0..4).filter(|i| mask >> i & 1 == 1));
            assert_eq!(sk.cut_out_estimate(&s), g.cut_out(&s));
        }
    }

    #[test]
    fn size_scales_with_edges() {
        let sk2 = EdgeListSketch::new(16, vec![(0, 1, 1.0), (1, 2, 1.0)]);
        let sk4 = EdgeListSketch::new(16, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)]);
        // 16 nodes → 4-bit ids; per edge 4+4+64 = 72 bits.
        assert_eq!(sk4.size_bits() - sk2.size_bits(), 2 * 72);
    }

    #[test]
    fn batched_estimates_match_single_queries_bitwise() {
        let sk = EdgeListSketch::new(
            6,
            vec![
                (0, 1, 0.3),
                (1, 2, 1.7),
                (2, 0, 2.2),
                (0, 1, 0.4), // parallel edge
                (4, 5, 9.1),
            ],
        );
        let sets: Vec<NodeSet> = (1u32..63)
            .map(|mask| NodeSet::from_indices(6, (0..6).filter(|i| mask >> i & 1 == 1)))
            .collect();
        let batch = sk.cut_out_estimates(&sets);
        for (s, &b) in sets.iter().zip(&batch) {
            assert_eq!(b.to_bits(), sk.cut_out_estimate(s).to_bits());
        }
    }

    #[test]
    fn roundtrips_through_graph() {
        let sk = EdgeListSketch::new(3, vec![(0, 1, 1.5), (2, 0, 2.5)]);
        let g = sk.to_graph();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.pair_weight(NodeId::new(2), NodeId::new(0)), 2.5);
    }
}
