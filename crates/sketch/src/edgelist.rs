//! The common payload of graph-shaped sketches: a reweighted edge
//! list. Exact sketches store every edge; sampling sketches store the
//! survivors with inflated weights.

use crate::serialize::index_width;
use crate::traits::{CutOracle, CutSketch};
use dircut_comm::{BitReader, BitWriter, WireEncode, WireError};
use dircut_graph::{DiGraph, NodeId, NodeSet};

/// A sketch that *is* a (re-weighted) graph: the sparsifier case.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeListSketch {
    n: usize,
    edges: Vec<(u32, u32, f64)>,
}

impl EdgeListSketch {
    /// Builds from an explicit edge list over `n` nodes.
    #[must_use]
    pub fn new(n: usize, edges: Vec<(u32, u32, f64)>) -> Self {
        Self { n, edges }
    }

    /// Builds from a graph, keeping every edge at its weight.
    #[must_use]
    pub fn from_graph(g: &DiGraph) -> Self {
        let edges = g
            .edges()
            .iter()
            .map(|e| (e.from.0, e.to.0, e.weight))
            .collect();
        Self::new(g.num_nodes(), edges)
    }

    /// Number of stored edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of nodes of the underlying graph.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Re-materializes the sketch as a graph (for algorithms that want
    /// to run graph computations on the sparsifier, e.g. min-cut
    /// enumeration in the distributed protocol).
    #[must_use]
    pub fn to_graph(&self) -> DiGraph {
        let mut g = DiGraph::with_edge_capacity(self.n, self.edges.len());
        for &(u, v, w) in &self.edges {
            g.add_edge(NodeId::new(u as usize), NodeId::new(v as usize), w);
        }
        g
    }
}

/// Wire format: `n` (64 bits), edge count (32 bits), then per edge
/// `u`, `v` in `⌈log₂ n⌉` bits each and the weight as a full `f64`.
/// This is the layout the lower-bound reductions in `dircut-core`
/// have always accounted; making it *the* serialization means the
/// distributed runtime ships exactly the bits the experiments count.
impl WireEncode for EdgeListSketch {
    fn encode(&self, w: &mut BitWriter) {
        let width = index_width(self.n);
        w.write_bits(self.n as u64, 64);
        w.write_bits(self.edges.len() as u64, 32);
        for &(u, v, weight) in &self.edges {
            w.write_bits(u64::from(u), width);
            w.write_bits(u64::from(v), width);
            w.write_f64(weight);
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        let n64 = r.try_read_bits(64)?;
        if n64 > u64::from(u32::MAX) {
            return Err(WireError::Invalid(format!("node count {n64} too large")));
        }
        let n = n64 as usize;
        let count = r.try_read_bits(32)? as usize;
        let width = index_width(n);
        // Reject a corrupted count up front instead of looping over it.
        let per_edge = 2 * width as usize + 64;
        if r.remaining() < count * per_edge {
            return Err(WireError::UnexpectedEnd {
                needed: count * per_edge,
                available: r.remaining(),
            });
        }
        let mut edges = Vec::with_capacity(count);
        for _ in 0..count {
            let u = r.try_read_bits(width)?;
            let v = r.try_read_bits(width)?;
            let weight = r.try_read_f64()?;
            if u as usize >= n || v as usize >= n {
                return Err(WireError::Invalid(format!(
                    "edge endpoint ({u}, {v}) outside universe {n}"
                )));
            }
            edges.push((u as u32, v as u32, weight));
        }
        Ok(Self { n, edges })
    }
}

impl CutOracle for EdgeListSketch {
    fn universe(&self) -> usize {
        self.n
    }

    fn cut_out_estimate(&self, s: &NodeSet) -> f64 {
        assert_eq!(s.universe(), self.n, "node-set universe mismatch");
        // `+0.0`-seeded fold in stored-edge order — the same
        // accumulation the batched kernel performs, so both entry
        // points return identical bits.
        let mut out = 0.0;
        for &(u, v, w) in &self.edges {
            if s.contains(NodeId::new(u as usize)) && !s.contains(NodeId::new(v as usize)) {
                out += w;
            }
        }
        out
    }

    fn cut_out_estimates(&self, sets: &[NodeSet]) -> Vec<f64> {
        for s in sets {
            assert_eq!(s.universe(), self.n, "node-set universe mismatch");
        }
        dircut_graph::cuteval::cut_both_batch_edges(
            self.n,
            &self.edges,
            sets,
            dircut_graph::parallel::default_threads(),
        )
        .into_iter()
        .map(|(out, _)| out)
        .collect()
    }
}

impl CutSketch for EdgeListSketch {
    fn size_bits(&self) -> usize {
        self.wire_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_graph_is_exact() {
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId::new(0), NodeId::new(1), 2.0);
        g.add_edge(NodeId::new(1), NodeId::new(2), 3.0);
        g.add_edge(NodeId::new(2), NodeId::new(3), 5.0);
        g.add_edge(NodeId::new(3), NodeId::new(0), 7.0);
        let sk = EdgeListSketch::from_graph(&g);
        for mask in 1u32..15 {
            let s = NodeSet::from_indices(4, (0..4).filter(|i| mask >> i & 1 == 1));
            assert_eq!(sk.cut_out_estimate(&s), g.cut_out(&s));
        }
    }

    #[test]
    fn size_scales_with_edges() {
        let sk2 = EdgeListSketch::new(16, vec![(0, 1, 1.0), (1, 2, 1.0)]);
        let sk4 = EdgeListSketch::new(16, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)]);
        // 16 nodes → 4-bit ids; per edge 4+4+64 = 72 bits.
        assert_eq!(sk4.size_bits() - sk2.size_bits(), 2 * 72);
        // Header: n (64) + edge count (32).
        assert_eq!(sk2.size_bits(), 64 + 32 + 2 * 72);
    }

    #[test]
    fn wire_roundtrip_is_lossless() {
        let sk = EdgeListSketch::new(6, vec![(0, 1, 0.3), (4, 5, 9.1), (0, 1, 0.3)]);
        let msg = dircut_comm::to_message(&sk);
        assert_eq!(msg.bit_len(), sk.wire_bits());
        let back: EdgeListSketch = dircut_comm::from_message(&msg).expect("roundtrip");
        assert_eq!(back, sk);
    }

    #[test]
    fn decode_rejects_out_of_universe_endpoints() {
        let mut w = BitWriter::new();
        w.write_bits(4, 64); // n = 4 → 2-bit ids
        w.write_bits(1, 32); // one edge
        w.write_bits(3, 2);
        w.write_bits(3, 2);
        w.write_f64(1.0);
        let good: Result<EdgeListSketch, _> = dircut_comm::from_message(&w.finish());
        assert!(good.is_ok());

        let mut w = BitWriter::new();
        w.write_bits(3, 64); // n = 3 → 2-bit ids, so id 3 is invalid
        w.write_bits(1, 32);
        w.write_bits(3, 2);
        w.write_bits(0, 2);
        w.write_f64(1.0);
        let bad: Result<EdgeListSketch, _> = dircut_comm::from_message(&w.finish());
        assert!(matches!(bad, Err(WireError::Invalid(_))), "{bad:?}");
    }

    #[test]
    fn decode_rejects_truncated_payload() {
        let sk = EdgeListSketch::new(8, vec![(0, 1, 1.0), (2, 3, 2.0)]);
        let msg = dircut_comm::to_message(&sk);
        let mut w = BitWriter::new();
        let mut r = msg.reader();
        for _ in 0..msg.bit_len() - 40 {
            w.write_bit(r.read_bit());
        }
        let bad: Result<EdgeListSketch, _> = dircut_comm::from_message(&w.finish());
        assert!(
            matches!(bad, Err(WireError::UnexpectedEnd { .. })),
            "{bad:?}"
        );
    }

    #[test]
    fn batched_estimates_match_single_queries_bitwise() {
        let sk = EdgeListSketch::new(
            6,
            vec![
                (0, 1, 0.3),
                (1, 2, 1.7),
                (2, 0, 2.2),
                (0, 1, 0.4), // parallel edge
                (4, 5, 9.1),
            ],
        );
        let sets: Vec<NodeSet> = (1u32..63)
            .map(|mask| NodeSet::from_indices(6, (0..6).filter(|i| mask >> i & 1 == 1)))
            .collect();
        let batch = sk.cut_out_estimates(&sets);
        for (s, &b) in sets.iter().zip(&batch) {
            assert_eq!(b.to_bits(), sk.cut_out_estimate(s).to_bits());
        }
    }

    #[test]
    fn roundtrips_through_graph() {
        let sk = EdgeListSketch::new(3, vec![(0, 1, 1.5), (2, 0, 2.5)]);
        let g = sk.to_graph();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.pair_weight(NodeId::new(2), NodeId::new(0)), 2.5);
    }
}
