//! Honest sketch sizing.
//!
//! `size_bits()` claims are only meaningful if they come from a real
//! serialization of the data structure. [`SketchEncoder`] writes the
//! sketch into a byte buffer (via `bytes`) and reports the exact bit
//! count; fixed-width fields use the minimal widths the structure
//! needs (e.g. node ids in `⌈log₂ n⌉` bits).

use bytes::{BufMut, BytesMut};

/// Serializes sketch contents, tracking the exact number of bits.
///
/// Sub-byte fields are packed; the total is the packed bit count, not
/// the buffer's byte length × 8.
#[derive(Debug, Default)]
pub struct SketchEncoder {
    buf: BytesMut,
    bits: usize,
    partial: u8,
    partial_bits: u32,
}

impl SketchEncoder {
    /// A fresh encoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    #[must_use]
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Writes the low `width` bits of `value`.
    ///
    /// # Panics
    /// Panics if `width > 64` or `value` exceeds `width` bits.
    pub fn put_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64);
        assert!(width == 64 || value >> width == 0, "value wider than field");
        for i in 0..width {
            let bit = (value >> i & 1) as u8;
            self.partial |= bit << self.partial_bits;
            self.partial_bits += 1;
            if self.partial_bits == 8 {
                self.buf.put_u8(self.partial);
                self.partial = 0;
                self.partial_bits = 0;
            }
        }
        self.bits += width as usize;
    }

    /// Writes a full `f64` (64 bits).
    pub fn put_f64(&mut self, v: f64) {
        self.put_bits(v.to_bits(), 64);
    }

    /// Writes a node id in `width` bits (use `⌈log₂ n⌉`).
    pub fn put_node(&mut self, idx: usize, width: u32) {
        self.put_bits(idx as u64, width);
    }

    /// Finishes, returning `(bytes, exact_bit_count)`.
    #[must_use]
    pub fn finish(mut self) -> (bytes::Bytes, usize) {
        if self.partial_bits > 0 {
            self.buf.put_u8(self.partial);
        }
        (self.buf.freeze(), self.bits)
    }
}

/// The number of bits needed to index `n` distinct values (≥ 1).
#[must_use]
pub fn index_width(n: usize) -> u32 {
    if n <= 1 {
        1
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_width_basics() {
        assert_eq!(index_width(1), 1);
        assert_eq!(index_width(2), 1);
        assert_eq!(index_width(3), 2);
        assert_eq!(index_width(256), 8);
        assert_eq!(index_width(257), 9);
    }

    #[test]
    fn bits_are_counted_exactly() {
        let mut e = SketchEncoder::new();
        e.put_bits(0b101, 3);
        e.put_f64(1.5);
        e.put_node(77, 7);
        let (bytes, bits) = e.finish();
        assert_eq!(bits, 3 + 64 + 7);
        assert_eq!(bytes.len(), bits.div_ceil(8));
    }

    #[test]
    #[should_panic(expected = "wider than field")]
    fn rejects_overflowing_fields() {
        let mut e = SketchEncoder::new();
        e.put_bits(16, 4);
    }
}
