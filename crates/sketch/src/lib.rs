//! Cut sketches for (balanced, directed) graphs.
//!
//! The upper-bound side of the paper: data structures that answer
//! directed cut queries `w(S, V∖S)` approximately, with honest
//! bit-level size accounting, in both the **for-each** (Definition 2.3)
//! and **for-all** (Definition 2.2) models.
//!
//! * [`traits`] — [`CutOracle`] / [`CutSketch`] / [`CutSketcher`],
//! * [`edgelist`] — sparsifier-shaped sketches,
//! * [`sampling`] — Karger uniform and Benczúr–Karger/NI strength
//!   sampling (undirected-style for-all),
//! * [`balanced`] — the β-balanced digraph sketches the paper's lower
//!   bounds are matched against (Õ(nβ/ε²) for-all, Õ(n√β/ε) for-each),
//! * [`decomposed`] — the two-level strength-decomposition for-each
//!   sketch (one recursion level of the real \[ACK+16\] construction),
//! * [`linear`] — mergeable linear (Rademacher/JL) sketches of the cut
//!   quadratic form, the \[AGM12\]/\[ACK+16\] lineage,
//! * [`adversarial`] — worst-case `(1±ε)` noisy oracles and bit-budget
//!   truncated sketches for the lower-bound experiments,
//! * [`streaming`] — insert-only streaming sparsifiers and fully
//!   dynamic (turnstile) linear sketches with exact delete
//!   cancellation,
//! * [`boost`] — median-of-k success boosting (footnotes 2–3),
//! * [`serialize`] — exact bit counting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod balanced;
pub mod boost;
pub mod decomposed;
pub mod edgelist;
pub mod linear;
pub mod sampling;
pub mod serialize;
pub mod streaming;
pub mod traits;

pub use adversarial::{BudgetedSketch, NoiseModel, NoisyOracle};
pub use balanced::{BalancedForAllSketcher, BalancedForEachSketcher, DegreeSampleSketch};
pub use boost::{BoostedSketch, BoostedSketcher};
pub use decomposed::{DecomposedForEachSketcher, DecomposedSketch};
pub use edgelist::EdgeListSketch;
pub use linear::{LinearCutSketch, LinearSketcher};
pub use sampling::{StrengthSketcher, UniformSketcher};
pub use streaming::{StreamingSparsifier, TurnstileLinearSketch};
pub use traits::{CutOracle, CutSketch, CutSketcher, ExactOracle, SketchKind};
