//! Cut sketches for (balanced, directed) graphs.
//!
//! The upper-bound side of the paper: data structures that answer
//! directed cut queries `w(S, V∖S)` approximately, with honest
//! bit-level size accounting, in both the **for-each** (Definition 2.3)
//! and **for-all** (Definition 2.2) models.
//!
//! * [`traits`] — [`CutOracle`] / [`CutSketch`] / [`CutSketcher`],
//! * [`sparsifier`] — the unified [`Sparsifier`] pipeline:
//!   [`SparsifierSpec`] value types, the closed [`AnySketch`] enum and
//!   the name-keyed [`registry`] every experiment sweeps,
//! * [`edgelist`] — sparsifier-shaped sketches,
//! * [`sampling`] — Karger uniform and Benczúr–Karger/NI strength
//!   sampling (undirected-style for-all),
//! * [`balanced`] — the β-balanced digraph sketches the paper's lower
//!   bounds are matched against (Õ(nβ/ε²) for-all, Õ(n√β/ε) for-each),
//! * [`cutbalance`] — the cut-balance-scaled directed sampler of
//!   arXiv 2006.01975,
//! * [`partial`] — partial sparsification (exact below a strength
//!   threshold) per arXiv 2111.08959,
//! * [`decomposed`] — the two-level strength-decomposition for-each
//!   sketch (one recursion level of the real \[ACK+16\] construction),
//! * [`linear`] — mergeable linear (Rademacher/JL) sketches of the cut
//!   quadratic form, the \[AGM12\]/\[ACK+16\] lineage,
//! * [`adversarial`] — worst-case `(1±ε)` noisy oracles and bit-budget
//!   truncated sketches for the lower-bound experiments,
//! * [`streaming`] — insert-only streaming sparsifiers and fully
//!   dynamic (turnstile) linear sketches with exact delete
//!   cancellation,
//! * [`boost`] — median-of-k success boosting (footnotes 2–3),
//! * [`serialize`] — exact bit counting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod balanced;
pub mod boost;
pub mod cutbalance;
pub mod decomposed;
pub mod edgelist;
pub mod linear;
pub mod partial;
pub mod sampling;
pub mod serialize;
pub mod sparsifier;
pub mod streaming;
pub mod traits;

pub use adversarial::{BudgetedSketch, NoiseModel, NoisyOracle};
pub use balanced::{BalancedForAllSketcher, BalancedForEachSketcher, DegreeSampleSketch};
pub use boost::{BoostedSketch, BoostedSketcher};
pub use cutbalance::CutBalanceSketcher;
pub use decomposed::{DecomposedForEachSketcher, DecomposedSketch};
pub use edgelist::EdgeListSketch;
pub use linear::{LinearCutSketch, LinearSketcher};
pub use partial::PartialSparsifier;
pub use sampling::{max_relative_cut_error, StrengthSketcher, UniformSketcher};
pub use sparsifier::{registry, AnySketch, Sparsified, Sparsifier, SparsifierSpec};
pub use streaming::{StreamingSparsifier, TurnstileLinearSketch};
pub use traits::{CutOracle, CutSketch, CutSketcher, ExactOracle, SketchKind};
