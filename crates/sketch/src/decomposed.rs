//! A two-level for-each cut sketch via strength decomposition — one
//! structural level closer to the real \[ACK+16\]/\[IT18\] Õ(n√β/ε)
//! construction than the flat [`crate::balanced::BalancedForEachSketcher`].
//!
//! The construction:
//!
//! 1. Partition the nodes into **τ-strong components** by recursively
//!    splitting along (symmetrized) minimum cuts of value < τ — every
//!    surviving component has internal min-cut ≥ τ, and the removed
//!    cuts carry total weight < τ·(#components − 1).
//! 2. **Cross-component edges are stored exactly** — their total
//!    weight is bounded by the splitting, so this level costs
//!    `O(τ·n)` weight-words.
//! 3. Inside each strong component, store every node's exact
//!    *intra-component* weighted out-degree and sample intra-component
//!    edges at rate `p = min(1, c·ln n/(ε·τ))` — a `1/ε` rate, because
//!    per-cut variance inside a τ-strong component rides on cuts of
//!    value ≥ τ.
//!
//! A cut query recomposes: exact cross weight + per component
//! `Σ_{u∈S∩C} d⁺_C(u) − ŵ(E_C(S∩C, S∩C))`.
//!
//! The real construction recurses over geometrically growing strengths;
//! one level is enough to expose the structure and measure the
//! guarantee (DESIGN.md logs the simplification).

use crate::serialize::{index_width, SketchEncoder};
use crate::traits::{CutOracle, CutSketch, CutSketcher, SketchKind};
use dircut_graph::mincut::stoer_wagner;
use dircut_graph::{DiGraph, NodeId, NodeSet};
use rand::Rng;

/// Partitions nodes into τ-strong components by recursive min-cut
/// splitting of the symmetrization: every returned component of size
/// ≥ 2 has internal (symmetrized) min-cut ≥ `tau`.
#[must_use]
pub fn strength_components(g: &DiGraph, tau: f64) -> Vec<u32> {
    let n = g.num_nodes();
    let mut component = vec![u32::MAX; n];
    let mut next_id = 0u32;
    // Start from weakly connected components, walking the CSR target
    // and source slices directly (no edge-id indirection).
    let csr = g.csr();
    let mut stack: Vec<Vec<usize>> = {
        let mut seen = vec![false; n];
        let mut groups = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut group = vec![start];
            seen[start] = true;
            let mut frontier = vec![start];
            while let Some(u) = frontier.pop() {
                let u_id = NodeId::new(u);
                for &w in csr.out_targets(u_id).iter().chain(csr.in_sources(u_id)) {
                    let w = w as usize;
                    if !seen[w] {
                        seen[w] = true;
                        group.push(w);
                        frontier.push(w);
                    }
                }
            }
            groups.push(group);
        }
        groups
    };

    while let Some(group) = stack.pop() {
        if group.len() == 1 {
            component[group[0]] = next_id;
            next_id += 1;
            continue;
        }
        // Induced symmetrized subgraph on `group`.
        let mut local_of = std::collections::HashMap::new();
        for (i, &v) in group.iter().enumerate() {
            local_of.insert(v, i);
        }
        let mut sub = DiGraph::new(group.len());
        for e in g.edges() {
            if let (Some(&a), Some(&b)) =
                (local_of.get(&e.from.index()), local_of.get(&e.to.index()))
            {
                sub.add_edge(NodeId::new(a), NodeId::new(b), e.weight);
            }
        }
        if sub.num_edges() == 0 {
            for &v in &group {
                component[v] = next_id;
                next_id += 1;
            }
            continue;
        }
        let cut = stoer_wagner(&sub);
        if cut.value >= tau {
            for &v in &group {
                component[v] = next_id;
            }
            next_id += 1;
        } else {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for (i, &v) in group.iter().enumerate() {
                if cut.side.contains(NodeId::new(i)) {
                    a.push(v);
                } else {
                    b.push(v);
                }
            }
            stack.push(a);
            stack.push(b);
        }
    }
    component
}

/// The two-level sketch.
#[derive(Debug, Clone)]
pub struct DecomposedSketch {
    n: usize,
    /// Component id per node.
    component: Vec<u32>,
    /// Exact cross-component directed edges.
    cross: Vec<(u32, u32, f64)>,
    /// Exact intra-component weighted out-degree per node.
    intra_out_degree: Vec<f64>,
    /// Sampled intra-component edges (reweighted).
    sampled: Vec<(u32, u32, f64)>,
    size_bits: usize,
}

impl DecomposedSketch {
    fn new(
        n: usize,
        component: Vec<u32>,
        cross: Vec<(u32, u32, f64)>,
        intra_out_degree: Vec<f64>,
        sampled: Vec<(u32, u32, f64)>,
    ) -> Self {
        let w = index_width(n);
        let cw = index_width(component.iter().map(|&c| c as usize + 1).max().unwrap_or(1));
        let mut enc = SketchEncoder::new();
        enc.put_bits(n as u64, 64);
        for &c in &component {
            enc.put_bits(u64::from(c), cw);
        }
        for &(u, v, weight) in cross.iter().chain(&sampled) {
            enc.put_node(u as usize, w);
            enc.put_node(v as usize, w);
            enc.put_f64(weight);
        }
        for &d in &intra_out_degree {
            enc.put_f64(d);
        }
        let (_, size_bits) = enc.finish();
        Self {
            n,
            component,
            cross,
            intra_out_degree,
            sampled,
            size_bits,
        }
    }

    /// Number of strong components.
    #[must_use]
    pub fn num_components(&self) -> usize {
        self.component
            .iter()
            .map(|&c| c as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Number of exactly stored cross-component edges.
    #[must_use]
    pub fn num_cross_edges(&self) -> usize {
        self.cross.len()
    }

    /// Number of sampled intra-component edges.
    #[must_use]
    pub fn num_sampled_edges(&self) -> usize {
        self.sampled.len()
    }
}

impl CutOracle for DecomposedSketch {
    fn universe(&self) -> usize {
        self.n
    }

    fn cut_out_estimate(&self, s: &NodeSet) -> f64 {
        assert_eq!(s.universe(), self.n, "node-set universe mismatch");
        // Level 1: exact cross-component crossings.
        let mut total: f64 = self
            .cross
            .iter()
            .filter(|&&(u, v, _)| {
                s.contains(NodeId::new(u as usize)) && !s.contains(NodeId::new(v as usize))
            })
            .map(|&(_, _, w)| w)
            .sum();
        // Level 2: per-node intra degrees minus estimated internal mass.
        total += s
            .iter()
            .map(|v| self.intra_out_degree[v.index()])
            .sum::<f64>();
        total -= self
            .sampled
            .iter()
            .filter(|&&(u, v, _)| {
                s.contains(NodeId::new(u as usize)) && s.contains(NodeId::new(v as usize))
            })
            .map(|&(_, _, w)| w)
            .sum::<f64>();
        total.max(0.0)
    }
}

impl CutSketch for DecomposedSketch {
    fn size_bits(&self) -> usize {
        self.size_bits
    }
}

/// Sketcher producing [`DecomposedSketch`]es.
#[derive(Debug, Clone, Copy)]
pub struct DecomposedForEachSketcher {
    /// Target relative error ε.
    pub epsilon: f64,
    /// The balance bound β of the inputs (scales the strength threshold).
    pub beta: f64,
    /// Strength threshold τ (None = automatic `√β/ε`, the paper's block
    /// connectivity scale).
    pub tau: Option<u32>,
    /// Oversampling constant for the intra-component rate.
    pub oversample: f64,
}

impl DecomposedForEachSketcher {
    /// Creates a sketcher with automatic threshold and default
    /// oversampling (2).
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1` and `β ≥ 1`.
    #[must_use]
    pub fn new(epsilon: f64, beta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "ε must be in (0,1)");
        assert!(beta >= 1.0, "β must be ≥ 1");
        Self {
            epsilon,
            beta,
            tau: None,
            oversample: 2.0,
        }
    }

    /// The strength threshold τ (weight units) for graph `g`: an
    /// explicit `tau` if set, otherwise the graph's own symmetrized
    /// min-cut (floored at `√β/ε`) — with the automatic choice the
    /// whole graph is one strong component and the construction
    /// degrades gracefully to the flat degree+sample sketch; setting
    /// `tau` *above* the global min-cut engages the decomposition and
    /// is the knob for heterogeneous (clustered) graphs.
    #[must_use]
    pub fn resolve_tau(&self, g: &DiGraph) -> f64 {
        match self.tau {
            Some(t) => f64::from(t),
            None => stoer_wagner(g).value.max(self.beta.sqrt() / self.epsilon),
        }
    }

    /// The intra-component sampling rate at threshold `tau`.
    #[must_use]
    pub fn sample_probability(&self, n: usize, tau: f64) -> f64 {
        (self.oversample * (n.max(2) as f64).ln() / (self.epsilon * tau.max(1.0))).min(1.0)
    }
}

impl CutSketcher for DecomposedForEachSketcher {
    type Sketch = DecomposedSketch;

    fn kind(&self) -> SketchKind {
        SketchKind::ForEach
    }

    fn sketch<R: Rng>(&self, g: &DiGraph, rng: &mut R) -> DecomposedSketch {
        let n = g.num_nodes();
        let tau = self.resolve_tau(g);
        let component = strength_components(g, tau);
        let p = self.sample_probability(n, tau);
        let mut cross = Vec::new();
        let mut sampled = Vec::new();
        let mut intra_out_degree = vec![0.0f64; n];
        for e in g.edges() {
            if component[e.from.index()] == component[e.to.index()] {
                intra_out_degree[e.from.index()] += e.weight;
                if p >= 1.0 || rng.gen_bool(p) {
                    sampled.push((e.from.0, e.to.0, e.weight / p));
                }
            } else {
                cross.push((e.from.0, e.to.0, e.weight));
            }
        }
        DecomposedSketch::new(n, component, cross, intra_out_degree, sampled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircut_graph::generators::random_balanced_digraph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Two dense balanced clusters joined by thin connections: the
    /// decomposition should find ≥ 2 strong components.
    fn clustered(n_half: usize, beta: f64, seed: u64) -> DiGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = 2 * n_half;
        let mut g = DiGraph::new(n);
        for base in [0, n_half] {
            for i in 0..n_half {
                for j in 0..n_half {
                    if i != j {
                        let w = rng.gen_range(1.0..2.0);
                        g.add_edge(NodeId::new(base + i), NodeId::new(base + j), w / beta);
                        // forward direction heavier to exercise balance
                        let _ = w;
                    }
                }
            }
        }
        // Thin bridge, both directions.
        for b in 0..2 {
            g.add_edge(NodeId::new(b), NodeId::new(n_half + b), 1.0);
            g.add_edge(NodeId::new(n_half + b), NodeId::new(b), 1.0 / beta);
        }
        g
    }

    #[test]
    fn decomposition_separates_clusters() {
        let g = clustered(10, 2.0, 0);
        let sketcher = DecomposedForEachSketcher {
            epsilon: 0.3,
            beta: 2.0,
            tau: Some(4),
            oversample: 2.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let sk = sketcher.sketch(&g, &mut rng);
        assert!(
            sk.num_components() >= 2,
            "found {} components",
            sk.num_components()
        );
        // The bridges (and only low-label edges) are stored exactly.
        assert!(sk.num_cross_edges() >= 4);
        assert!(sk.num_cross_edges() < g.num_edges() / 2);
    }

    #[test]
    fn full_rate_sketch_is_exact_on_every_cut() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = random_balanced_digraph(10, 0.7, 2.0, &mut rng);
        // Force p = 1 via a huge oversample.
        let sketcher = DecomposedForEachSketcher {
            epsilon: 0.3,
            beta: 2.0,
            tau: Some(3),
            oversample: 1e9,
        };
        let sk = sketcher.sketch(&g, &mut rng);
        for mask in 1u32..(1 << 9) {
            let s = NodeSet::from_indices(10, (0..9).filter(|i| mask >> i & 1 == 1).map(|i| i + 1));
            let truth = g.cut_out(&s);
            assert!(
                (sk.cut_out_estimate(&s) - truth).abs() < 1e-9,
                "mask {mask}: {} vs {truth}",
                sk.cut_out_estimate(&s)
            );
        }
    }

    #[test]
    fn estimator_is_unbiased_per_cut() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = random_balanced_digraph(14, 0.8, 2.0, &mut rng);
        let sketcher = DecomposedForEachSketcher::new(0.4, 2.0);
        let s = NodeSet::from_indices(14, 0..7);
        let truth = g.cut_out(&s);
        let reps = 300;
        let mean: f64 = (0..reps)
            .map(|_| sketcher.sketch(&g, &mut rng).cut_out_estimate(&s))
            .sum::<f64>()
            / reps as f64;
        assert!(
            (mean - truth).abs() < 0.05 * truth,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn per_cut_error_meets_the_for_each_bar() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = random_balanced_digraph(16, 0.9, 4.0, &mut rng);
        let eps = 0.3;
        let sketcher = DecomposedForEachSketcher::new(eps, 4.0);
        let s = NodeSet::from_indices(16, [0, 2, 5, 7, 8, 11, 13]);
        let truth = g.cut_out(&s);
        let trials = 60;
        let within = (0..trials)
            .filter(|_| {
                let est = sketcher.sketch(&g, &mut rng).cut_out_estimate(&s);
                (est - truth).abs() <= eps * truth
            })
            .count();
        assert!(
            within * 3 >= trials * 2,
            "only {within}/{trials} within (1±ε)"
        );
    }

    #[test]
    fn cross_weight_bounded_by_tau_times_components() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = random_balanced_digraph(20, 0.3, 2.0, &mut rng);
        let tau = 6u32;
        let sketcher = DecomposedForEachSketcher {
            epsilon: 0.3,
            beta: 2.0,
            tau: Some(tau),
            oversample: 2.0,
        };
        let sk = sketcher.sketch(&g, &mut rng);
        // Every split removed a symmetrized cut of weight < τ and there
        // are at most (#components − 1) splits.
        let cross_weight: f64 = g
            .edges()
            .iter()
            .filter(|e| {
                // recompute: an edge is cross iff endpoints differ in comp
                let comps = strength_components(&g, f64::from(tau));
                comps[e.from.index()] != comps[e.to.index()]
            })
            .map(|e| e.weight)
            .sum();
        let bound = f64::from(tau) * (sk.num_components().max(1) as f64 - 1.0);
        assert!(
            cross_weight <= bound + 1e-9,
            "cross weight {cross_weight} exceeds τ(c−1) = {bound}"
        );
    }

    #[test]
    fn strength_components_have_internal_min_cut_at_least_tau() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = random_balanced_digraph(14, 0.4, 2.0, &mut rng);
        let tau = 5.0;
        let comps = strength_components(&g, tau);
        let num = comps.iter().map(|&c| c as usize + 1).max().unwrap();
        for c in 0..num as u32 {
            let members: Vec<usize> = (0..g.num_nodes()).filter(|&v| comps[v] == c).collect();
            if members.len() < 2 {
                continue;
            }
            // Induced symmetrized min cut ≥ τ.
            let mut local = std::collections::HashMap::new();
            for (i, &v) in members.iter().enumerate() {
                local.insert(v, i);
            }
            let mut sub = DiGraph::new(members.len());
            for e in g.edges() {
                if let (Some(&a), Some(&b)) = (local.get(&e.from.index()), local.get(&e.to.index()))
                {
                    sub.add_edge(NodeId::new(a), NodeId::new(b), e.weight);
                }
            }
            let cut = dircut_graph::mincut::stoer_wagner(&sub);
            assert!(
                cut.value >= tau - 1e-9,
                "component {c} has min-cut {}",
                cut.value
            );
        }
    }

    #[test]
    fn sketch_kind_is_for_each() {
        assert_eq!(
            DecomposedForEachSketcher::new(0.2, 1.0).kind(),
            SketchKind::ForEach
        );
    }
}
