//! Property-based tests for sketches: exactness, noise envelopes,
//! budget monotonicity, boosting.

use dircut_graph::{DiGraph, NodeId, NodeSet};
use dircut_sketch::adversarial::{BudgetedSketch, NoiseModel, NoisyOracle};
use dircut_sketch::{
    BalancedForEachSketcher, BoostedSketcher, CutOracle, CutSketch, CutSketcher, EdgeListSketch,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_digraph() -> impl Strategy<Value = DiGraph> {
    (3usize..12, 0u64..10_000).prop_map(|(n, seed)| {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut g = DiGraph::new(n);
        for u in 0..n {
            for v in 0..n {
                if u != v && rng.gen_bool(0.5) {
                    g.add_edge(NodeId::new(u), NodeId::new(v), rng.gen_range(0.1..4.0));
                }
            }
            g.add_edge(NodeId::new(u), NodeId::new((u + 1) % n), 1.0);
        }
        g
    })
}

fn subset_of(n: usize, mask: u64) -> NodeSet {
    NodeSet::from_indices(n, (0..n).filter(|i| mask >> (i % 60) & 1 == 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn edge_list_sketch_is_exact(g in arb_digraph(), mask in any::<u64>()) {
        let sk = EdgeListSketch::from_graph(&g);
        let s = subset_of(g.num_nodes(), mask);
        prop_assert!((sk.cut_out_estimate(&s) - g.cut_out(&s)).abs() < 1e-9);
    }

    #[test]
    fn edge_list_sketch_size_is_linear_in_edges(g in arb_digraph()) {
        use dircut_sketch::serialize::index_width;
        let sk = EdgeListSketch::from_graph(&g);
        let per_edge = 2 * index_width(g.num_nodes()) as usize + 64;
        // Header: n (64 bits) + edge count (32 bits).
        prop_assert_eq!(sk.size_bits(), 64 + 32 + g.num_edges() * per_edge);
    }

    #[test]
    fn noisy_oracle_stays_in_its_envelope(
        g in arb_digraph(),
        mask in any::<u64>(),
        eps in 0.0f64..0.9,
        seed in any::<u64>(),
    ) {
        let s = subset_of(g.num_nodes(), mask);
        let truth = g.cut_out(&s);
        for model in [NoiseModel::SignedRelative, NoiseModel::UniformRelative] {
            let oracle = NoisyOracle::new(g.clone(), eps, seed, model);
            let est = oracle.cut_out_estimate(&s);
            prop_assert!((est - truth).abs() <= eps * truth + 1e-9);
            // Determinism per cut.
            prop_assert_eq!(oracle.cut_out_estimate(&s), est);
        }
    }

    #[test]
    fn budgeted_sketch_retention_is_monotone(g in arb_digraph(), b1 in 100usize..5000, b2 in 100usize..5000) {
        let (lo, hi) = (b1.min(b2), b1.max(b2));
        let small = BudgetedSketch::new(&g, lo);
        let large = BudgetedSketch::new(&g, hi);
        prop_assert!(small.retention() <= large.retention() + 1e-12);
        prop_assert!(small.size_bits() <= large.size_bits());
    }

    #[test]
    fn budgeted_sketch_with_full_budget_is_exact(g in arb_digraph(), mask in any::<u64>()) {
        let sk = BudgetedSketch::new(&g, 1 << 22);
        prop_assert_eq!(sk.dropped_edges(), 0);
        let s = subset_of(g.num_nodes(), mask);
        prop_assert!((sk.cut_out_estimate(&s) - g.cut_out(&s)).abs() < 1e-9);
    }

    #[test]
    fn boosted_median_lies_within_replica_range(g in arb_digraph(), mask in any::<u64>(), seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let base = BalancedForEachSketcher::new(0.4, 2.0);
        let boosted = BoostedSketcher::new(base, 5).sketch(&g, &mut rng);
        let s = subset_of(g.num_nodes(), mask);
        let median = boosted.cut_out_estimate(&s);
        // Rebuild replicas with the same seed stream is not possible
        // from outside, but the median of any multiset lies within its
        // range; check against wide physical bounds instead.
        prop_assert!(median >= 0.0);
        prop_assert!(median <= g.total_weight() * (1.0 / base.sample_probability(&g)).max(1.0) + 1e-6);
    }

    #[test]
    fn foreach_sketch_degree_table_is_exact_for_full_sets(g in arb_digraph(), seed in any::<u64>()) {
        // Querying S = V∖{v} isolates the degree table: the cut is
        // w(V∖{v}, {v}) = in-degree of v, and the sampled internal part
        // only subtracts — the estimate must stay near in-degree when
        // the sketch keeps everything (p = 1 at tiny scale).
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sketcher = BalancedForEachSketcher::new(0.9, 1.0);
        let p = sketcher.sample_probability(&g);
        prop_assume!(p >= 1.0);
        let sk = sketcher.sketch(&g, &mut rng);
        let n = g.num_nodes();
        for v in 0..n {
            let mut s = NodeSet::full(n);
            s.remove(NodeId::new(v));
            let truth = g.cut_out(&s);
            prop_assert!((sk.cut_out_estimate(&s) - truth).abs() < 1e-6, "node {v}");
        }
    }
}

mod wire_props {
    use super::*;
    use dircut_comm::frame::{open, seal};
    use dircut_comm::{from_message, to_message, WireEncode};
    use dircut_sketch::DegreeSampleSketch;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn edge_list_wire_roundtrip_preserves_every_cut(g in arb_digraph(), mask in any::<u64>()) {
            let sk = EdgeListSketch::from_graph(&g);
            let msg = to_message(&sk);
            prop_assert_eq!(msg.bit_len(), sk.wire_bits());
            let back: EdgeListSketch = from_message(&msg).expect("roundtrip");
            prop_assert_eq!(&back, &sk);
            let s = subset_of(g.num_nodes(), mask);
            prop_assert_eq!(
                back.cut_out_estimate(&s).to_bits(),
                sk.cut_out_estimate(&s).to_bits()
            );
        }

        #[test]
        fn degree_sample_wire_roundtrip_preserves_every_cut(
            g in arb_digraph(),
            mask in any::<u64>(),
            seed in any::<u64>(),
        ) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let sk = BalancedForEachSketcher::new(0.4, 2.0).sketch(&g, &mut rng);
            let msg = to_message(&sk);
            prop_assert_eq!(msg.bit_len(), sk.wire_bits());
            let back: DegreeSampleSketch = from_message(&msg).expect("roundtrip");
            prop_assert_eq!(&back, &sk);
            let s = subset_of(g.num_nodes(), mask);
            prop_assert_eq!(
                back.cut_out_estimate(&s).to_bits(),
                sk.cut_out_estimate(&s).to_bits()
            );
        }

        #[test]
        fn sealed_frames_survive_and_corrupt_frames_are_rejected(
            g in arb_digraph(),
            flip in any::<proptest::sample::Index>(),
        ) {
            let sk = EdgeListSketch::from_graph(&g);
            let framed = seal(&to_message(&sk)).unwrap();
            let payload = open(&framed).expect("clean frame opens");
            let back: EdgeListSketch = from_message(&payload).expect("decodes");
            prop_assert_eq!(back, sk);

            // Any single bit flip must be caught by the frame check.
            let mut w = dircut_comm::BitWriter::new();
            let mut r = framed.reader();
            let target = flip.index(framed.bit_len());
            for i in 0..framed.bit_len() {
                let bit = r.read_bit();
                w.write_bit(if i == target { !bit } else { bit });
            }
            prop_assert!(open(&w.finish()).is_err());
        }
    }
}

mod sparsifier_props {
    use super::*;
    use dircut_graph::cache;
    use dircut_sketch::{max_relative_cut_error, registry, Sparsified, Sparsifier};

    /// The registry contract under randomness: the cache toggle must
    /// be unobservable in the constructed sketch — same billed bits,
    /// same retained edges, same exhaustive error bits, same batch
    /// estimates. (Races with sibling tests flipping the process-global
    /// toggle only exercise the contract harder; the serialized
    /// deterministic sweeps — including the 1-vs-8-worker one — live in
    /// `sparsifier_equiv.rs`.)
    fn fingerprint(
        spec: &dircut_sketch::SparsifierSpec,
        g: &DiGraph,
        seed: u64,
    ) -> (usize, usize, u64, Vec<u64>) {
        let n = g.num_nodes();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sk = spec.construct(g, &mut rng);
        let sets: Vec<NodeSet> = (1u64..16).map(|m| subset_of(n, m)).collect();
        (
            sk.wire_bits(),
            sk.retained_edges(),
            max_relative_cut_error(g, &sk).to_bits(),
            sk.cut_out_estimates(&sets)
                .into_iter()
                .map(f64::to_bits)
                .collect(),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn registry_constructions_are_cache_invariant(
            g in arb_digraph(),
            seed in any::<u64>(),
        ) {
            for spec in registry(0.4, 2.0) {
                cache::set_enabled(false);
                let cold = fingerprint(&spec, &g, seed);
                cache::set_enabled(true);
                let warm = fingerprint(&spec, &g, seed);
                let replay = fingerprint(&spec, &g, seed);
                prop_assert_eq!(&cold, &warm, "cache on/off: {}", spec.name());
                prop_assert_eq!(&cold, &replay, "warm replay: {}", spec.name());
                prop_assert!(cold.0 > 0, "{} bills zero bits", spec.name());
            }
        }
    }
}

mod streaming_props {
    use super::*;
    use dircut_sketch::streaming::{StreamingSparsifier, TurnstileLinearSketch};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn sparsifier_memory_never_exceeds_budget(
            g in arb_digraph(),
            budget in 5usize..40,
            seed in any::<u64>(),
        ) {
            let mut sp = StreamingSparsifier::new(g.num_nodes(), budget, seed);
            for e in g.edges() {
                sp.insert(e.from, e.to, e.weight);
                prop_assert!(sp.stored_edges() <= budget);
            }
            prop_assert_eq!(sp.stream_length(), g.num_edges() as u64);
            prop_assert!(sp.rate() <= 1.0 && sp.rate() > 0.0);
        }

        #[test]
        fn sparsifier_with_slack_budget_is_exact(g in arb_digraph(), mask in any::<u64>(), seed in any::<u64>()) {
            let mut sp = StreamingSparsifier::new(g.num_nodes(), g.num_edges() + 1, seed);
            for e in g.edges() {
                sp.insert(e.from, e.to, e.weight);
            }
            prop_assert_eq!(sp.rate(), 1.0);
            let s = subset_of(g.num_nodes(), mask);
            prop_assert!((sp.snapshot().cut_out_estimate(&s) - g.cut_out(&s)).abs() < 1e-9);
        }

        #[test]
        fn turnstile_insert_then_delete_is_identity(
            g in arb_digraph(),
            mask in any::<u64>(),
            seed in any::<u64>(),
            rows in 1usize..16,
        ) {
            let n = g.num_nodes();
            let mut sk = TurnstileLinearSketch::new(n, rows, seed);
            for e in g.edges() {
                sk.insert(e.from, e.to, e.weight);
            }
            for e in g.edges() {
                sk.delete(e.from, e.to, e.weight);
            }
            let s = subset_of(n, mask);
            prop_assert!(sk.undirected_cut_estimate(&s).abs() < 1e-12);
        }

        #[test]
        fn turnstile_update_order_is_irrelevant(g in arb_digraph(), mask in any::<u64>(), seed in any::<u64>()) {
            let n = g.num_nodes();
            let mut fwd = TurnstileLinearSketch::new(n, 8, seed);
            for e in g.edges() {
                fwd.insert(e.from, e.to, e.weight);
            }
            let mut rev = TurnstileLinearSketch::new(n, 8, seed);
            for e in g.edges().iter().rev() {
                rev.insert(e.from, e.to, e.weight);
            }
            let s = subset_of(n, mask);
            prop_assert!((fwd.undirected_cut_estimate(&s) - rev.undirected_cut_estimate(&s)).abs() < 1e-9);
        }
    }
}
