//! The registry-wide sparsifier equivalence contract: for every
//! [`SparsifierSpec`] in the registry, the constructed sketch — its
//! billed wire bits, retained-edge count, every batched cut estimate,
//! and the exhaustively measured for-all error — is **bit-identical**
//! whether the query cache is on or off, whether the memo is cold or
//! warm, and at every worker count. The cache and the thread pool must
//! be unobservable everywhere except wall-clock time.
//!
//! These are the deterministic sweeps; the proptest sweep over random
//! graphs lives in `proptests.rs` (`sparsifier_props`).

use dircut_graph::cache;
use dircut_graph::{DiGraph, NodeId, NodeSet};
use dircut_sketch::{max_relative_cut_error, registry, CutOracle, Sparsified, Sparsifier};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Serializes tests in this binary: the cache toggle and the
/// `DIRCUT_THREADS` variable are process-global. Holders must leave
/// the cache enabled and the variable as they found it.
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn env_lock() -> std::sync::MutexGuard<'static, ()> {
    ENV_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A strongly connected weighted digraph small enough for the
/// exhaustive error sweep (511 cuts at n = 10) but dense enough that
/// every registry entry actually samples, decomposes, and hashes.
fn test_graph() -> DiGraph {
    let n = 10;
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(0.4) {
                g.add_edge(NodeId::new(u), NodeId::new(v), rng.gen_range(0.2..3.0));
            }
        }
        g.add_edge(NodeId::new(u), NodeId::new((u + 1) % n), 1.0);
    }
    g
}

/// Everything observable about one construction: billed size, retained
/// edges, the exhaustive for-all error, and a batch of raw estimate
/// bits (exercising the batched-kernel path the single-query path can
/// route around).
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    wire_bits: usize,
    retained: usize,
    err_bits: u64,
    estimate_bits: Vec<u64>,
}

fn fingerprint(spec: &dircut_sketch::SparsifierSpec, g: &DiGraph, seed: u64) -> Fingerprint {
    let n = g.num_nodes();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sk = spec.construct(g, &mut rng);
    let sets: Vec<NodeSet> = (1..32u64)
        .map(|mask| NodeSet::from_indices(n, (0..n).filter(|i| mask >> (i % 5) & 1 == 1)))
        .collect();
    Fingerprint {
        wire_bits: sk.wire_bits(),
        retained: sk.retained_edges(),
        err_bits: max_relative_cut_error(g, &sk).to_bits(),
        estimate_bits: sk
            .cut_out_estimates(&sets)
            .into_iter()
            .map(f64::to_bits)
            .collect(),
    }
}

#[test]
fn every_registry_sparsifier_is_cache_invariant() {
    let _guard = env_lock();
    let g = test_graph();
    for spec in registry(0.4, 2.0) {
        cache::set_enabled(false);
        let cold = fingerprint(&spec, &g, 1234);
        cache::set_enabled(true);
        // First cached pass fills the memos, second replays them — all
        // three constructions must be indistinguishable.
        let warm_first = fingerprint(&spec, &g, 1234);
        let warm_replay = fingerprint(&spec, &g, 1234);
        assert_eq!(cold, warm_first, "cache-off vs cache-on: {}", spec.name());
        assert_eq!(cold, warm_replay, "cold vs warm replay: {}", spec.name());
    }
}

#[test]
fn every_registry_sparsifier_is_thread_invariant() {
    let _guard = env_lock();
    cache::set_enabled(true);
    let g = test_graph();
    let prior = std::env::var("DIRCUT_THREADS").ok();
    for spec in registry(0.4, 2.0) {
        std::env::set_var("DIRCUT_THREADS", "1");
        let serial = fingerprint(&spec, &g, 99);
        std::env::set_var("DIRCUT_THREADS", "8");
        let threaded = fingerprint(&spec, &g, 99);
        assert_eq!(serial, threaded, "1 vs 8 threads: {}", spec.name());
    }
    match prior {
        Some(v) => std::env::set_var("DIRCUT_THREADS", v),
        None => std::env::remove_var("DIRCUT_THREADS"),
    }
}

#[test]
fn different_seeds_only_move_randomized_entries() {
    let _guard = env_lock();
    cache::set_enabled(true);
    let g = test_graph();
    for spec in registry(0.4, 2.0) {
        let a = fingerprint(&spec, &g, 7);
        let b = fingerprint(&spec, &g, 8);
        // The exact baseline ignores the rng entirely; every entry is
        // at least billed deterministically given its retained count.
        if spec.name() == "exact" {
            assert_eq!(a, b, "exact must not consume randomness");
        }
        assert!(a.wire_bits > 0, "{} bills zero bits", spec.name());
    }
}
