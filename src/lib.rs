//! `dircut` — facade crate re-exporting the whole workspace.
//!
//! An executable reproduction of *Tight Lower Bounds for Directed Cut
//! Sparsification and Distributed Min-Cut* (PODS 2024). See the README
//! for a tour and `DESIGN.md` for the system inventory.
//!
//! The workspace is organized as substrates plus the paper's core:
//!
//! * [`graph`] — directed weighted graphs, cuts, flows, global min-cut,
//!   balance certificates, generators ([`dircut_graph`]).
//! * [`linalg`] — Hadamard matrices, fast Walsh–Hadamard transforms and
//!   the Lemma 3.2 tensor-row matrix ([`dircut_linalg`]).
//! * [`comm`] — communication games (Index, Gap-Hamming, 2-SUM) with
//!   exact bit accounting ([`dircut_comm`]).
//! * [`sketch`] — for-each / for-all cut sketches with honest
//!   `size_bits()` ([`dircut_sketch`]).
//! * [`localquery`] — the degree/neighbor/adjacency oracle model and
//!   BGMP21-style min-cut algorithms ([`dircut_localquery`]).
//! * [`core`] — the paper's lower-bound constructions and reductions
//!   ([`dircut_core`]).
//! * [`dist`] — distributed min-cut over sketches ([`dircut_dist`]).
//!
//! # Example
//!
//! Sketch a β-balanced digraph and query a directed cut:
//!
//! ```
//! use dircut::graph::generators::random_balanced_digraph;
//! use dircut::graph::NodeSet;
//! use dircut::sketch::{BalancedForEachSketcher, CutOracle, CutSketch, CutSketcher};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let g = random_balanced_digraph(32, 0.5, 4.0, &mut rng);
//! let sketch = BalancedForEachSketcher::new(0.25, 4.0).sketch(&g, &mut rng);
//! let s = NodeSet::from_indices(32, 0..16);
//! let estimate = sketch.cut_out_estimate(&s);
//! let truth = g.cut_out(&s);
//! assert!((estimate - truth).abs() <= 0.5 * truth);
//! assert!(sketch.size_bits() > 0);
//! ```

#![forbid(unsafe_code)]

pub use dircut_comm as comm;
pub use dircut_core as core;
pub use dircut_dist as dist;
pub use dircut_graph as graph;
pub use dircut_linalg as linalg;
pub use dircut_localquery as localquery;
pub use dircut_sketch as sketch;
