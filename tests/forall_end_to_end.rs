//! Integration: the Section 4 (Theorem 1.2) reduction run end-to-end —
//! Gap-Hamming instances decided through real for-all sketches.

use dircut::core::reduction::{
    run_reduction_game, ForAllGapHammingReduction, ForAllSketchReduction, OracleSpec,
};
use dircut::core::{ForAllParams, SubsetSearch};
use dircut::graph::balance::edgewise_balance_bound;
use dircut::sketch::UniformSketcher;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn gap_hamming_decided_through_exact_sketch() {
    let params = ForAllParams::new(1, 8, 2);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let report = run_reduction_game(
        &ForAllGapHammingReduction {
            params,
            half_gap: 2,
            search: SubsetSearch::Exact,
            oracle: OracleSpec::Exact,
        },
        25,
        &mut rng,
    );
    assert!(
        report.success_rate() >= 0.85,
        "rate {}",
        report.success_rate()
    );
}

#[test]
fn gap_hamming_decided_through_sampling_for_all_sketch() {
    // A *real* for-all sketch (uniform sampling at tight ε): the
    // enumeration decoder of Lemma 4.4 must still find Q.
    let params = ForAllParams::new(1, 8, 2);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let report = run_reduction_game(
        &ForAllSketchReduction {
            params,
            half_gap: 2,
            search: SubsetSearch::Exact,
            sketcher: UniformSketcher::new(0.05),
        },
        25,
        &mut rng,
    );
    assert!(
        report.success_rate() >= 0.8,
        "rate {}",
        report.success_rate()
    );
}

#[test]
fn randomized_subset_search_approaches_exact() {
    let params = ForAllParams::new(1, 8, 2);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let exact = run_reduction_game(
        &ForAllGapHammingReduction {
            params,
            half_gap: 2,
            search: SubsetSearch::Exact,
            oracle: OracleSpec::Exact,
        },
        25,
        &mut rng,
    );
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let sampled = run_reduction_game(
        &ForAllGapHammingReduction {
            params,
            half_gap: 2,
            search: SubsetSearch::Randomized { samples: 40 },
            oracle: OracleSpec::Exact,
        },
        25,
        &mut rng,
    );
    assert!(
        sampled.success_rate() >= exact.success_rate() - 0.2,
        "randomized {} far below exact {}",
        sampled.success_rate(),
        exact.success_rate()
    );
    assert!(sampled.mean_queries < exact.mean_queries);
}

#[test]
fn sub_lower_bound_budgets_fail() {
    let params = ForAllParams::new(1, 16, 2);
    let lb = params.lower_bound_bits();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let tiny = run_reduction_game(
        &ForAllGapHammingReduction {
            params,
            half_gap: 2,
            search: SubsetSearch::Exact,
            oracle: OracleSpec::Budgeted { bits: lb },
        },
        30,
        &mut rng,
    );
    // At the lower-bound budget the straw-man sketch keeps almost no
    // structure; success must be near a coin flip.
    assert!(tiny.success_rate() <= 0.7, "rate {}", tiny.success_rate());
}

#[test]
fn encoding_balance_is_certified_2beta() {
    use dircut::comm::gap_hamming::random_weighted_string;
    use dircut::core::forall::ForAllEncoding;
    for beta in [1usize, 2, 4] {
        let params = ForAllParams::new(beta, 4, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(beta as u64);
        let strings: Vec<Vec<bool>> = (0..params.num_strings())
            .map(|_| random_weighted_string(4, 2, &mut rng))
            .collect();
        let enc = ForAllEncoding::encode(params, &strings);
        let cert = edgewise_balance_bound(enc.graph()).unwrap();
        assert!(
            cert <= 2.0 * beta as f64 + 1e-9,
            "β = {beta}: certificate {cert}"
        );
    }
}
