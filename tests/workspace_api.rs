//! Integration: the facade crate's public API fits together — the
//! cross-crate seams a downstream user would touch first.

use dircut::core::{ForAllParams, ForEachParams};
use dircut::graph::generators::random_balanced_digraph;
use dircut::graph::{NodeId, NodeSet};
use dircut::linalg::Lemma32Matrix;
use dircut::sketch::{
    BalancedForAllSketcher, BalancedForEachSketcher, BoostedSketcher, CutOracle, CutSketch,
    CutSketcher, SketchKind,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn facade_reexports_compose() {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let g = random_balanced_digraph(12, 0.7, 3.0, &mut rng);
    let s = NodeSet::from_indices(12, 0..6);
    let truth = g.cut_out(&s);

    let forall = BalancedForAllSketcher::new(0.4, 3.0);
    assert_eq!(forall.kind(), SketchKind::ForAll);
    let sk = forall.sketch(&g, &mut rng);
    assert!(sk.size_bits() > 0);
    assert!((sk.cut_out_estimate(&s) - truth).abs() <= 0.5 * truth + 5.0);

    let foreach = BoostedSketcher::new(BalancedForEachSketcher::new(0.4, 3.0), 3);
    assert_eq!(foreach.kind(), SketchKind::ForEach);
    let sk = foreach.sketch(&g, &mut rng);
    assert!((sk.cut_out_estimate(&s) - truth).abs() <= 0.5 * truth + 5.0);
}

#[test]
fn lower_bound_parameter_arithmetic_is_consistent() {
    // Theorem 1.1's Ω̃(n√β/ε) and the construction's bit count agree up
    // to the (1 − ε)² correction.
    let p = ForEachParams::new(16, 2, 4);
    let n = p.num_nodes() as f64;
    let reference = n * p.beta().sqrt() / p.epsilon();
    let actual = p.total_bits() as f64;
    assert!(actual <= reference);
    assert!(
        actual >= 0.5 * reference,
        "encoded bits {actual} ≪ reference {reference}"
    );

    // Theorem 1.2's Ω(nβ/ε²) likewise.
    let p = ForAllParams::new(2, 16, 3);
    let n = p.num_nodes() as f64;
    let reference = n * 2.0 * 16.0;
    let actual = p.lower_bound_bits() as f64;
    assert!(actual <= reference);
    assert!(actual >= 0.5 * reference);
}

#[test]
fn lemma32_drives_cut_queries() {
    // The linalg sign split and the graph cut machinery agree: querying
    // w(A,B) − w(Ā,B) − w(A,B̄) + w(Ā,B̄) on a graph whose forward
    // weights are a single Lemma 3.2 row recovers that row's norm.
    let d = 8;
    let m = Lemma32Matrix::new(d);
    let t = 5;
    let row = m.row(t);
    let mut g = dircut::graph::DiGraph::new(2 * d);
    for a in 0..d {
        for b in 0..d {
            // Shift to keep weights positive; the shift cancels.
            g.add_edge(NodeId::new(a), NodeId::new(d + b), row[a * d + b] + 2.0);
        }
    }
    let split = m.sign_split(t);
    let w_between = |left: &[usize], right: &[usize]| -> f64 {
        let a = NodeSet::from_indices(2 * d, left.iter().copied());
        let b = NodeSet::from_indices(2 * d, right.iter().map(|&x| d + x));
        g.weight_between(&a, &b)
    };
    let combo = w_between(&split.a, &split.b)
        - w_between(&split.a_bar, &split.b)
        - w_between(&split.a, &split.b_bar)
        + w_between(&split.a_bar, &split.b_bar);
    assert!((combo - m.row_norm_sq()).abs() < 1e-9, "combo {combo}");
}
