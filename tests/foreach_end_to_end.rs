//! Integration: the Section 3 (Theorem 1.1) reduction run end-to-end
//! across crates — comm (Index), core (construction + decoder), sketch
//! (real oracles), graph (balance verification).

use dircut::comm::IndexInstance;
use dircut::core::foreach::{ForEachDecoder, ForEachEncoding};
use dircut::core::reduction::{
    run_reduction_game, ForEachIndexReduction, ForEachSketchReduction, OracleSpec,
};
use dircut::core::ForEachParams;
use dircut::graph::balance::{edgewise_balance_bound, exact_balance_factor};
use dircut::sketch::adversarial::NoiseModel;
use dircut::sketch::{EdgeListSketch, UniformSketcher};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn alice_bob_index_game_with_exact_sketch() {
    // The full pipeline of Lemma 3.3/Theorem 1.1 with an exact oracle:
    // Alice samples the Index distribution, encodes, Bob decodes the
    // queried bit — always, since the oracle is error-free.
    let params = ForEachParams::new(8, 1, 3);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    for trial in 0..10 {
        let inst = IndexInstance::sample(params.total_bits(), &mut rng);
        let enc = ForEachEncoding::encode(params, &inst.s);
        if enc.block_failed(inst.i) {
            continue; // charged to the paper's 1/100 failure budget
        }
        let oracle = EdgeListSketch::from_graph(enc.graph());
        let dec = ForEachDecoder::new(params).decode_bit(&oracle, inst.i);
        assert_eq!(dec.sign, inst.answer(), "trial {trial}");
    }
}

#[test]
fn gadget_balance_matches_the_paper_claim() {
    // The construction must be O(β·log(1/ε))-balanced; for small
    // instances the exact factor is checkable too.
    let params = ForEachParams::new(4, 1, 2);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let s: Vec<i8> = (0..params.total_bits())
        .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
        .collect();
    let enc = ForEachEncoding::encode(params, &s);
    let cert = edgewise_balance_bound(enc.graph()).expect("reverse edges exist");
    assert!(cert <= params.balance_bound() + 1e-9);
    let exact = exact_balance_factor(enc.graph());
    assert!(exact <= cert + 1e-9);
}

#[test]
fn decoding_collapses_above_the_noise_threshold() {
    // Theorem 1.1's quantitative heart: a (1 ± c₂ε/ln(1/ε)) oracle
    // suffices, but noise a large factor above destroys the decoder.
    let params = ForEachParams::new(8, 1, 2);
    let eps = params.epsilon();
    let threshold = 0.25 * eps / (1.0 / eps).ln();
    let trials = 150;

    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let ok = run_reduction_game(
        &ForEachIndexReduction {
            params,
            oracle: OracleSpec::Noisy {
                err: threshold,
                model: NoiseModel::SignedRelative,
            },
        },
        trials,
        &mut rng,
    );
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let bad = run_reduction_game(
        &ForEachIndexReduction {
            params,
            oracle: OracleSpec::Noisy {
                err: 40.0 * threshold,
                model: NoiseModel::SignedRelative,
            },
        },
        trials,
        &mut rng,
    );
    assert!(
        ok.success_rate() >= 0.9,
        "at-threshold rate {}",
        ok.success_rate()
    );
    assert!(
        bad.success_rate() <= ok.success_rate() - 0.15,
        "no collapse: {} vs {}",
        bad.success_rate(),
        ok.success_rate()
    );
}

#[test]
fn tiny_budget_sketches_cannot_support_the_decoder() {
    let params = ForEachParams::new(8, 2, 2);
    let trials = 100;
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let big = run_reduction_game(
        &ForEachIndexReduction {
            params,
            oracle: OracleSpec::Budgeted { bits: 1 << 20 },
        },
        trials,
        &mut rng,
    );
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let tiny = run_reduction_game(
        &ForEachIndexReduction {
            params,
            oracle: OracleSpec::Budgeted {
                bits: params.lower_bound_bits() / 2,
            },
        },
        trials,
        &mut rng,
    );
    assert_eq!(big.success_rate(), 1.0);
    assert!(
        tiny.success_rate() < 0.8,
        "sub-LB budget still decodes at {}",
        tiny.success_rate()
    );
}

#[test]
fn honest_sampling_sketch_supports_decoding_when_it_keeps_enough() {
    // A for-all uniform sampling sketch at moderate ε on the gadget:
    // at gadget scale the required rate forces it to keep most edges,
    // and decoding goes through a *real* sketch, not just oracles.
    let params = ForEachParams::new(4, 1, 2);
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let report = run_reduction_game(
        &ForEachSketchReduction {
            params,
            sketcher: UniformSketcher::new(0.05),
        },
        40,
        &mut rng,
    );
    assert!(
        report.success_rate() >= 0.9,
        "rate {}",
        report.success_rate()
    );
}
