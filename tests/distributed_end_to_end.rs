//! Integration: the distributed min-cut protocol (Section 1) across
//! threads, sketches, and the Karger–Stein enumerator.

use dircut::dist::{distributed_min_cut, symmetric_graph, ProtocolConfig};
use dircut::graph::mincut::stoer_wagner;
use dircut::sketch::{CutSketch, EdgeListSketch};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn dense_instance(n: usize, seed: u64) -> dircut::graph::DiGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v, rng.gen_range(2.0..6.0)));
        }
    }
    symmetric_graph(n, &edges)
}

#[test]
fn distributed_answer_matches_centralized_min_cut() {
    let g = dense_instance(28, 0);
    let truth = stoer_wagner(&g).value / 2.0;
    let mut cfg = ProtocolConfig::new(0.2);
    cfg.enumeration_trials = 80;
    let res = distributed_min_cut(&g, 4, cfg, 1);
    assert!(
        (res.estimate - truth).abs() <= 0.3 * truth,
        "estimate {} vs truth {truth}",
        res.estimate
    );
    // The returned side must be verifiable against the real graph.
    let real = g.cut_out(&res.side);
    assert!(
        real <= 1.5 * truth,
        "returned side has value {real}, truth {truth}"
    );
}

#[test]
fn protocol_is_deterministic_given_the_seed() {
    let g = dense_instance(20, 2);
    let mut cfg = ProtocolConfig::new(0.3);
    cfg.enumeration_trials = 40;
    let a = distributed_min_cut(&g, 3, cfg, 7);
    let b = distributed_min_cut(&g, 3, cfg, 7);
    assert_eq!(a.estimate, b.estimate);
    assert_eq!(a.total_wire_bits, b.total_wire_bits);
    assert_eq!(a.candidates, b.candidates);
}

#[test]
fn communication_beats_shipping_raw_edges_on_heavy_graphs() {
    // On a heavily connected graph the sampled sketches keep a fraction
    // of the edges, so wire bits < the exact edge list's bits.
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let n = 60;
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v, rng.gen_range(30.0..50.0)));
        }
    }
    let g = symmetric_graph(n, &edges);
    let raw_bits = EdgeListSketch::from_graph(&g).size_bits();
    let mut cfg = ProtocolConfig::new(0.3);
    cfg.enumeration_trials = 60;
    let res = distributed_min_cut(&g, 4, cfg, 5);
    assert!(
        res.total_wire_bits < raw_bits,
        "wire {} ≥ raw {raw_bits}",
        res.total_wire_bits
    );
}

#[test]
fn varying_server_counts_keep_the_answer_stable() {
    let g = dense_instance(24, 6);
    let truth = stoer_wagner(&g).value / 2.0;
    for servers in [1usize, 2, 5] {
        let mut cfg = ProtocolConfig::new(0.25);
        cfg.enumeration_trials = 60;
        let res = distributed_min_cut(&g, servers, cfg, 11);
        assert!(
            (res.estimate - truth).abs() <= 0.4 * truth,
            "{servers} servers: estimate {} vs truth {truth}",
            res.estimate
        );
    }
}
