//! Integration: the Section 5 (Theorem 1.3) reduction — a *real*
//! local-query min-cut algorithm solving 2-SUM through the
//! bit-counting oracle simulation.

use dircut::comm::TwoSumInstance;
use dircut::core::mincut_lb::{solve_twosum_via_mincut, GxyGraph, GxyOracle};
use dircut::localquery::{global_min_cut_local, GraphOracle, SearchVariant, VerifyGuessConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn modified_bgmp_solves_twosum_within_promised_error() {
    // 2-SUM(t, L, α) needs additive error √t; the reduction guarantees
    // error r·ε ≤ t·ε, so ε ≤ 1/√t suffices. Here √t = 2.83, ε = 0.2.
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let inst = TwoSumInstance::sample(8, 128, 2, 3, &mut rng);
    let mut algo_rng = ChaCha8Rng::seed_from_u64(1);
    let result = solve_twosum_via_mincut(&inst, |oracle| {
        global_min_cut_local(
            oracle,
            0.2,
            SearchVariant::Modified { beta0: 0.25 },
            VerifyGuessConfig::default(),
            &mut algo_rng,
        )
        .estimate
    });
    let err = (result.disj_estimate - result.disj_truth).abs();
    assert!(err <= (inst.num_pairs() as f64).sqrt(), "2-SUM error {err}");
    assert!(result.bits_exchanged > 0);
}

#[test]
fn communication_is_twice_the_informative_queries() {
    // Lemma 5.6's accounting: neighbor/adjacency queries cost exactly 2
    // bits, degree queries 0.
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let inst = TwoSumInstance::sample(4, 64, 1, 2, &mut rng);
    let (x, y) = inst.concatenated();
    let oracle = GxyOracle::new(x, y);
    let n = oracle.num_nodes();
    let mut informative = 0u64;
    for u in 0..n {
        let u = dircut::graph::NodeId::new(u);
        let _ = oracle.degree(u); // free
        let _ = oracle.ith_neighbor(u, 0); // 2 bits
        informative += 1;
    }
    assert_eq!(oracle.bits_exchanged(), 2 * informative);
}

#[test]
fn lemma_5_5_holds_on_twosum_built_graphs() {
    // The min-cut of G_{x,y} equals 2·Σ INT(Xⁱ, Yⁱ) whenever the √N
    // premise holds — checked with real flows across instance shapes.
    for (t, l, alpha, hits, seed) in [
        (4usize, 64usize, 1usize, 2usize, 3u64),
        (4, 100, 2, 1, 4),
        (16, 16, 1, 3, 5),
    ] {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = TwoSumInstance::sample(t, l, alpha, hits, &mut rng);
        let (x, y) = inst.concatenated();
        let g = GxyGraph::build(&x, &y);
        if g.premise_holds() {
            assert_eq!(g.verify_lemma_5_5(), 2 * inst.int_sum() as u64);
        }
    }
}

#[test]
fn query_count_respects_the_min_m_branch() {
    // For small k (k ≪ ln n/ε²) every VERIFY-GUESS call saturates at
    // p = 1, so the total cost is Θ(m) per call — the min{m, ·} branch
    // of Theorem 1.3, and far above the m/(ε²k) branch.
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let inst = TwoSumInstance::sample(8, 128, 2, 3, &mut rng);
    let (x, y) = inst.concatenated();
    let g = GxyGraph::build(&x, &y);
    let m = g.graph().num_edges() as u64;
    let mut algo_rng = ChaCha8Rng::seed_from_u64(7);
    let mut queries = 0;
    let _ = solve_twosum_via_mincut(&inst, |oracle| {
        let res = global_min_cut_local(
            oracle,
            0.2,
            SearchVariant::Modified { beta0: 0.25 },
            VerifyGuessConfig::default(),
            &mut algo_rng,
        );
        queries = res.total_queries;
        res.estimate
    });
    // At least one full scan of the slots, at most a handful.
    assert!(
        queries >= 2 * m,
        "queries {queries} below one slot scan {m}"
    );
    assert!(queries <= 20 * m, "queries {queries} unreasonably high");
}
